"""TACOS end-to-end collective algorithm synthesis (Alg. 2 of the paper).

The synthesizer starts from the TEN at ``t = 0``, runs the utilization
maximizing matching algorithm for the current time span, expands the TEN to
the next time span, and repeats until every postcondition is satisfied.
Reduction collectives are handled by reversal (Fig. 11): a Reduce-Scatter is
synthesized as an All-Gather over the link-reversed topology and reversed in
time; an All-Reduce is a Reduce-Scatter followed by an All-Gather.
"""

from __future__ import annotations

import random
import struct
import time as _time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.collectives.all_reduce import AllReduce
from repro.collectives.pattern import ChunkOwnership, CollectivePattern, FrozenPattern
from repro.core.algorithm import CollectiveAlgorithm
from repro.core.config import SynthesisConfig
from repro.core.matching import MatchingState, TrialBound, run_matching_round
from repro.errors import SynthesisError
from repro.kernels import NUMBA_AVAILABLE
from repro.kernels.matching import native_run_matching_round
from repro.ten.network import TimeExpandedNetwork
from repro.topology.topology import Topology

__all__ = [
    "SynthesisEngine",
    "ENGINES",
    "FLAT_ENGINE",
    "NATIVE_ENGINE",
    "SynthesisResult",
    "TacosSynthesizer",
    "TrialPayload",
    "register_engine",
    "resolve_engine",
    "synthesize",
]


@dataclass(frozen=True)
class SynthesisEngine:
    """The pluggable chunk-state core driven by :class:`TacosSynthesizer`.

    An engine bundles the three ingredients of one synthesis trial: the TEN
    factory, the matching-state factory, and the per-span matching round.
    The default :data:`FLAT_ENGINE` is the array-backed implementation; the
    benchmark subsystem plugs in the frozen pre-refactor dict/set engine
    (:data:`repro.bench.reference.REFERENCE_ENGINE`) to prove the two produce
    identical algorithms on fixed seeds.
    """

    name: str
    ten_factory: Callable = TimeExpandedNetwork
    state_factory: Callable = MatchingState
    matching_round: Callable = run_matching_round


#: Default engine: flat array-backed state, CSR-indexed TEN.
FLAT_ENGINE = SynthesisEngine(name="flat")

#: Native engine: the numba matching-round kernel over the same flat state.
#: Safe to use even without numba — the kernel wrapper delegates every round
#: to the flat implementation then — but :func:`resolve_engine` resolves the
#: *name* ``"native"`` to :data:`FLAT_ENGINE` (with one warning) in that
#: case, so reports never claim a native tier that never compiled.
NATIVE_ENGINE = SynthesisEngine(name="native", matching_round=native_run_matching_round)

#: By-name registry of synthesis engines (the ``--engine`` CLI/bench seam).
#: The frozen reference engine registers itself on import of
#: :mod:`repro.bench.reference`.
ENGINES: Dict[str, SynthesisEngine] = {}


def register_engine(engine: SynthesisEngine) -> SynthesisEngine:
    """Add ``engine`` to :data:`ENGINES` under its name; returns it."""
    ENGINES[engine.name] = engine
    return engine


register_engine(FLAT_ENGINE)
register_engine(NATIVE_ENGINE)

_warned_native_fallback = False


def resolve_engine(name: str) -> SynthesisEngine:
    """Look up an engine by name, degrading ``native`` gracefully.

    When ``"native"`` is requested on a host without numba, returns
    :data:`FLAT_ENGINE` — the equivalence oracle the kernels are pinned
    against, so results are identical — and emits a single
    :class:`RuntimeWarning` per process.
    """
    if name == "native" and not NUMBA_AVAILABLE:
        from repro.kernels.matching import FORCE_PY_KERNEL

        if not FORCE_PY_KERNEL:
            global _warned_native_fallback
            if not _warned_native_fallback:
                _warned_native_fallback = True
                warnings.warn(
                    "native engine requested but numba is not installed; "
                    "falling back to the flat engine (install "
                    "tacos-repro[native] to enable compiled kernels)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return FLAT_ENGINE
    if name == "reference" and name not in ENGINES:
        # The frozen baseline lives in the bench subsystem; pull it in on
        # demand so `--engine reference` works from any entry point.
        import repro.bench.reference  # noqa: F401

    try:
        return ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise SynthesisError(f"unknown synthesis engine {name!r} (known: {known})") from None


@dataclass(frozen=True)
class TrialPayload:
    """Everything one randomized synthesis trial needs, minus its seed.

    Built once per :meth:`TacosSynthesizer._synthesize_direct` call and shared
    by every trial of the fan-out.  The payload (and the built-in engines) is
    picklable, so the same object drives serial loops, thread pools, and —
    via the module-level :func:`_run_trial_task` — process pools.
    """

    topology: Topology
    pattern: CollectivePattern
    collective_size: float
    chunk_size: float
    hop_distances: Optional[List[List[int]]]
    cheap_regions: Optional[dict]
    engine: SynthesisEngine
    prefer_lowest_cost: bool
    max_rounds: int

    def to_bytes(self) -> bytes:
        """Serialize to the broadcast plane's columnar wire format.

        Everything a trial consumes crosses as validated LE64 columns: the
        topology via :meth:`~repro.topology.topology.Topology.to_bytes`, the
        pattern as its pre/postcondition CSR columns (rebuilt as a
        :class:`~repro.collectives.pattern.FrozenPattern`), hop distances and
        cheaper-reachability regions as flat integer/float columns, and the
        engine *by registry name*.  Chunk sets are emitted sorted, so equal
        payloads always produce identical bytes — the blob's content hash is
        a payload identity the broadcast plane and worker caches key on.

        Raises :class:`~repro.errors.SynthesisError` when the engine is not
        the registered engine of its name (an anonymous or shadowed engine
        cannot be resolved on the worker side); callers fall back to the
        per-item pickle transport then.
        """
        if ENGINES.get(self.engine.name) is not self.engine:
            raise SynthesisError(
                f"engine {self.engine.name!r} is not the registered engine of that "
                "name; broadcast serialization ships engines by registry name"
            )
        topology_blob = self.topology.to_bytes()
        pattern = self.pattern
        name_bytes = pattern.name.encode("utf-8")
        num_npus = pattern.num_npus
        engine_bytes = self.engine.name.encode("utf-8")
        parts = [
            _PAYLOAD_MAGIC,
            struct.pack("<Q", len(topology_blob)),
            topology_blob,
            struct.pack("<Q", len(name_bytes)),
            name_bytes,
            struct.pack("<QQQ", num_npus, pattern.chunks_per_npu, pattern.num_chunks),
            _pack_ownership(pattern.precondition(), num_npus),
            _pack_ownership(pattern.postcondition(), num_npus),
            struct.pack("<dd", float(self.collective_size), float(self.chunk_size)),
        ]
        if self.hop_distances is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(struct.pack("<B", 1))
            flat = np.ascontiguousarray(self.hop_distances, dtype="<i8")
            parts.append(flat.tobytes())
        if self.cheap_regions is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(struct.pack("<BQ", 1, len(self.cheap_regions)))
            for cost, per_dest in self.cheap_regions.items():
                parts.append(struct.pack("<d", float(cost)))
                parts.append(_pack_region_columns(per_dest, self.topology.num_npus))
        parts.append(struct.pack("<Q", len(engine_bytes)))
        parts.append(engine_bytes)
        parts.append(struct.pack("<BQ", 1 if self.prefer_lowest_cost else 0, self.max_rounds))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TrialPayload":
        """Rebuild a payload serialized by :meth:`to_bytes`, validating loudly.

        The pattern comes back as a
        :class:`~repro.collectives.pattern.FrozenPattern` (same observable
        conditions, no size rule — the chunk size travels precomputed) and
        the engine resolves through the registry by name, so a worker runs
        exactly the engine the parent selected.
        """
        reader = _PayloadReader(data)
        reader.expect_magic(_PAYLOAD_MAGIC)
        topology = Topology.from_bytes(reader.read_sized())
        pattern_name = reader.read_sized().decode("utf-8")
        num_npus, chunks_per_npu, num_chunks = reader.unpack("<QQQ")
        precondition = reader.read_ownership(num_npus)
        postcondition = reader.read_ownership(num_npus)
        collective_size, chunk_size = reader.unpack("<dd")
        hop_distances: Optional[List[List[int]]] = None
        (has_hops,) = reader.unpack("<B")
        if has_hops:
            flat = reader.read_int_column(topology.num_npus * topology.num_npus)
            width = topology.num_npus
            hop_distances = [
                [int(value) for value in flat[row * width : (row + 1) * width]]
                for row in range(width)
            ]
        cheap_regions: Optional[dict] = None
        (has_cheap,) = reader.unpack("<B")
        if has_cheap:
            (tiers,) = reader.unpack("<Q")
            cheap_regions = {}
            for _ in range(tiers):
                (cost,) = reader.unpack("<d")
                cheap_regions[cost] = reader.read_region_columns(topology.num_npus)
        engine_name = reader.read_sized().decode("utf-8")
        prefer_lowest_cost, max_rounds = reader.unpack("<BQ")
        reader.expect_exhausted()
        engine = ENGINES.get(engine_name)
        if engine is None:
            engine = resolve_engine(engine_name)
        pattern = FrozenPattern(
            pattern_name,
            int(num_npus),
            int(chunks_per_npu),
            int(num_chunks),
            precondition,
            postcondition,
        )
        return cls(
            topology=topology,
            pattern=pattern,
            collective_size=float(collective_size),
            chunk_size=float(chunk_size),
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
            engine=engine,
            prefer_lowest_cost=bool(prefer_lowest_cost),
            max_rounds=int(max_rounds),
        )


#: Magic prefix of the :meth:`TrialPayload.to_bytes` wire format.
_PAYLOAD_MAGIC = b"TACOSPL1"


def _pack_ownership(ownership: ChunkOwnership, num_npus: int) -> bytes:
    """CSR-encode an ownership map: ``<q`` indptr row, then sorted chunk ids."""
    indptr = [0]
    members: List[int] = []
    for npu in range(num_npus):
        members.extend(sorted(ownership.get(npu, frozenset())))
        indptr.append(len(members))
    return (
        np.ascontiguousarray(indptr, dtype="<i8").tobytes()
        + np.ascontiguousarray(members, dtype="<i8").tobytes()
    )


def _pack_region_columns(per_dest: List[frozenset], num_npus: int) -> bytes:
    """CSR-encode one cheaper-reachability tier (per-dest NPU sets)."""
    if len(per_dest) != num_npus:
        raise SynthesisError(
            f"cheap-region tier has {len(per_dest)} destinations, expected {num_npus}"
        )
    indptr = [0]
    members: List[int] = []
    for region in per_dest:
        members.extend(sorted(region))
        indptr.append(len(members))
    return (
        np.ascontiguousarray(indptr, dtype="<i8").tobytes()
        + np.ascontiguousarray(members, dtype="<i8").tobytes()
    )


class _PayloadReader:
    """Sequential validated reader over a :meth:`TrialPayload.to_bytes` blob."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def expect_magic(self, magic: bytes) -> None:
        if self._data[: len(magic)] != magic:
            raise SynthesisError("not a serialized TrialPayload (bad magic)")
        self._offset = len(magic)

    def unpack(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        self._require(size)
        values = struct.unpack_from(fmt, self._data, self._offset)
        self._offset += size
        return values

    def read_sized(self) -> bytes:
        (length,) = self.unpack("<Q")
        self._require(length)
        blob = self._data[self._offset : self._offset + length]
        self._offset += length
        return blob

    def read_int_column(self, count: int) -> np.ndarray:
        self._require(count * 8)
        column = np.frombuffer(self._data, dtype="<i8", count=count, offset=self._offset)
        self._offset += count * 8
        return column

    def read_ownership(self, num_npus: int) -> ChunkOwnership:
        indptr = self.read_int_column(int(num_npus) + 1)
        self._check_indptr(indptr)
        members = self.read_int_column(int(indptr[-1]))
        return {
            npu: frozenset(int(chunk) for chunk in members[indptr[npu] : indptr[npu + 1]])
            for npu in range(int(num_npus))
        }

    def read_region_columns(self, num_npus: int) -> List[frozenset]:
        indptr = self.read_int_column(num_npus + 1)
        self._check_indptr(indptr)
        members = self.read_int_column(int(indptr[-1]))
        return [
            frozenset(int(npu) for npu in members[indptr[dest] : indptr[dest + 1]])
            for dest in range(num_npus)
        ]

    def expect_exhausted(self) -> None:
        if self._offset != len(self._data):
            raise SynthesisError(
                f"serialized TrialPayload has {len(self._data) - self._offset} trailing bytes"
            )

    def _check_indptr(self, indptr: np.ndarray) -> None:
        if len(indptr) == 0 or indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise SynthesisError("serialized TrialPayload has a corrupt CSR index")

    def _require(self, size: int) -> None:
        if self._offset + size > len(self._data):
            raise SynthesisError("serialized TrialPayload is truncated")


def _execute_trial(payload: TrialPayload, seed: int) -> Tuple[CollectiveAlgorithm, int]:
    """One randomized synthesis run (Alg. 2): returns (algorithm, rounds)."""
    engine = payload.engine
    topology = payload.topology
    pattern = payload.pattern
    ten = engine.ten_factory(topology, payload.chunk_size)
    state = engine.state_factory(
        topology.num_npus, pattern.precondition(), pattern.postcondition()
    )
    matching_round = engine.matching_round
    rng = random.Random(seed)

    transfers = []
    current_time = 0.0
    rounds = 0
    while not state.done:
        rounds += 1
        if rounds > payload.max_rounds:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} exceeded "
                f"{payload.max_rounds} time spans"
            )
        new_transfers = matching_round(
            ten,
            state,
            current_time,
            rng,
            prefer_lowest_cost=payload.prefer_lowest_cost,
            enable_forwarding=payload.hop_distances is not None,
            hop_distances=payload.hop_distances,
            cheap_regions=payload.cheap_regions,
        )
        transfers.extend(new_transfers)
        if state.done:
            break
        next_time = ten.next_event_after(current_time)
        if next_time is None:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} stalled at t={current_time:.3e}s; "
                "is the topology strongly connected?"
            )
        current_time = next_time

    algorithm = CollectiveAlgorithm(
        transfers=transfers,
        num_npus=topology.num_npus,
        chunk_size=payload.chunk_size,
        collective_size=float(payload.collective_size),
        pattern_name=pattern.name,
        topology_name=topology.name,
        metadata={"seed": seed, "rounds": rounds},
    )
    return algorithm, rounds


#: Relative slack on the prune comparison: a trial aborts only when its lower
#: bound exceeds the incumbent by more than one part in 1e9.  The slack keeps
#: the comparison robust to the few-ulp difference between the bound's
#: arithmetic and the schedule's own time accumulation; pruning *less* than
#: the strict threshold allows is always exact (see docs/determinism.md).
_PRUNE_REL_EPS = 1e-9


def _execute_trial_stats(
    payload: TrialPayload, seed: int, incumbent: Optional[float] = None
) -> Tuple[Optional[CollectiveAlgorithm], Dict[str, Any]]:
    """One randomized trial with per-trial bookkeeping and optional pruning.

    Same loop as :func:`_execute_trial` (identical RNG consumption round for
    round), plus: when ``incumbent`` is given, a :class:`TrialBound` is
    evaluated after every round and the trial aborts — returning
    ``(None, stats)`` — the moment the bound strictly exceeds the incumbent.
    A pruned trial provably cannot beat the incumbent, so best-of selection
    over the surviving trials picks the same winner as the unpruned search.

    The returned stats dict carries ``seed``, ``rounds``, ``collective_time``
    (``None`` when pruned), ``pruned_at_round`` (``None`` when completed),
    and ``wall_seconds`` — the bookkeeping the seed portfolio and the
    ``search`` bench consume.
    """
    started = _time.perf_counter()
    engine = payload.engine
    topology = payload.topology
    pattern = payload.pattern
    ten = engine.ten_factory(topology, payload.chunk_size)
    state = engine.state_factory(
        topology.num_npus, pattern.precondition(), pattern.postcondition()
    )
    matching_round = engine.matching_round
    rng = random.Random(seed)

    prune_limit = None
    bound = None
    if incumbent is not None:
        prune_limit = incumbent + abs(incumbent) * _PRUNE_REL_EPS
        bound = TrialBound(ten, state, payload.hop_distances)

    transfers = []
    committed_end = 0.0
    current_time = 0.0
    rounds = 0
    while not state.done:
        rounds += 1
        if rounds > payload.max_rounds:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} exceeded "
                f"{payload.max_rounds} time spans"
            )
        new_transfers = matching_round(
            ten,
            state,
            current_time,
            rng,
            prefer_lowest_cost=payload.prefer_lowest_cost,
            enable_forwarding=payload.hop_distances is not None,
            hop_distances=payload.hop_distances,
            cheap_regions=payload.cheap_regions,
        )
        if new_transfers:
            transfers.extend(new_transfers)
            for transfer in new_transfers:
                if transfer.end > committed_end:
                    committed_end = transfer.end
            if bound is not None:
                bound.update(new_transfers)
        if state.done:
            break
        if prune_limit is not None and bound.value(current_time, committed_end) > prune_limit:
            return None, {
                "seed": seed,
                "rounds": rounds,
                "collective_time": None,
                "pruned_at_round": rounds,
                "wall_seconds": _time.perf_counter() - started,
            }
        next_time = ten.next_event_after(current_time)
        if next_time is None:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} stalled at t={current_time:.3e}s; "
                "is the topology strongly connected?"
            )
        current_time = next_time

    algorithm = CollectiveAlgorithm(
        transfers=transfers,
        num_npus=topology.num_npus,
        chunk_size=payload.chunk_size,
        collective_size=float(payload.collective_size),
        pattern_name=pattern.name,
        topology_name=topology.name,
        metadata={"seed": seed, "rounds": rounds},
    )
    return algorithm, {
        "seed": seed,
        "rounds": rounds,
        "collective_time": algorithm.collective_time,
        "pruned_at_round": None,
        "wall_seconds": _time.perf_counter() - started,
    }


def _run_trial_task(payload: TrialPayload, seed: int) -> Tuple[bytes, dict, int]:
    """Process-pool trial task: the algorithm crosses back as raw column bytes.

    Returning ``TransferTable.to_bytes()`` instead of the object graph keeps
    the inter-process transport compact and bit-exact — the parent rebuilds
    an identical algorithm with :func:`_decode_trial_outcome`.
    """
    algorithm, rounds = _execute_trial(payload, seed)
    return algorithm.table.to_bytes(), dict(algorithm.metadata), rounds


def _decode_trial_outcome(
    payload: TrialPayload, outcome: Tuple[bytes, dict, int]
) -> Tuple[CollectiveAlgorithm, int]:
    """Rebuild a trial's algorithm from the bytes a process worker returned."""
    from repro.core.transfers import TransferTable

    table_bytes, metadata, rounds = outcome
    algorithm = CollectiveAlgorithm.from_table(
        TransferTable.from_bytes(table_bytes),
        num_npus=payload.topology.num_npus,
        chunk_size=payload.chunk_size,
        collective_size=float(payload.collective_size),
        pattern_name=payload.pattern.name,
        topology_name=payload.topology.name,
        metadata=metadata,
    )
    return algorithm, rounds


# Worker-side decoded-payload cache, keyed by the blob's content hash.  A warm
# PoolBackend worker decodes each distinct payload once and then serves every
# later chunk of the same fan-out — and of *later* fan-outs over the same
# inputs — from here.  Content addressing makes this safe: equal key implies
# equal bytes implies an identical payload.  Bounded so long-lived workers do
# not accumulate every payload they ever saw.
_PAYLOAD_CACHE: "OrderedDict[str, TrialPayload]" = OrderedDict()
_PAYLOAD_CACHE_LIMIT = 8


def _fetch_payload(ref) -> TrialPayload:
    """Resolve a broadcast ref to a decoded payload via the per-process cache."""
    payload = _PAYLOAD_CACHE.get(ref.key)
    if payload is not None:
        _PAYLOAD_CACHE.move_to_end(ref.key)
        return payload
    from repro.api.broadcast import fetch  # deferred: avoids an import cycle

    payload = TrialPayload.from_bytes(fetch(ref))
    _PAYLOAD_CACHE[ref.key] = payload
    while len(_PAYLOAD_CACHE) > _PAYLOAD_CACHE_LIMIT:
        _PAYLOAD_CACHE.popitem(last=False)
    return payload


def _run_trial_chunk(ref, seeds: List[int]) -> List[Tuple[bytes, dict, int]]:
    """Thin chunked trial task: a broadcast ref plus seeds, nothing bulky.

    This is what actually crosses the process boundary on the broadcast
    path — per chunk, one tiny :class:`~repro.api.broadcast.BlobRef` and a
    list of integer seeds, instead of one full payload pickle per trial.
    """
    payload = _fetch_payload(ref)
    return [_run_trial_task(payload, seed) for seed in seeds]


def _fan_out_trials(
    payload: TrialPayload, seeds: List[int], backend, workers: Optional[int]
) -> List[Tuple[CollectiveAlgorithm, int]]:
    """Broadcast-once/submit-thin trial fan-out for process-based backends.

    The payload is published once per fan-out as a content-hash-addressed
    blob (:mod:`repro.api.broadcast`) and the seeds are submitted in
    contiguous chunks, so N trials ship N seeds plus a handful of refs — not
    N topology pickles.  Payloads that cannot be serialized by name (an
    unregistered custom engine) fall back to the per-trial pickle transport;
    either way the outcomes, and therefore the best-of selection, are
    byte-identical.
    """
    from repro.api.parallel import chunk_items  # deferred: avoids an import cycle

    try:
        blob = payload.to_bytes()
    except SynthesisError:
        packed = backend.map(partial(_run_trial_task, payload), seeds, max_workers=workers)
        return [_decode_trial_outcome(payload, item) for item in packed]

    from repro.api import broadcast  # deferred: avoids an import cycle

    ref = broadcast.publish(blob)
    try:
        chunks = chunk_items(seeds, workers)
        packed_chunks = backend.map(
            partial(_run_trial_chunk, ref), chunks, max_workers=workers
        )
    finally:
        broadcast.release(ref)
    outcomes: List[Tuple[CollectiveAlgorithm, int]] = []
    for chunk in packed_chunks:
        outcomes.extend(_decode_trial_outcome(payload, item) for item in chunk)
    return outcomes


def _run_trial_task_stats(
    payload: TrialPayload, seed: int, incumbent: Optional[float] = None
) -> Tuple[Optional[Tuple[bytes, dict]], Dict[str, Any]]:
    """Process-pool stats trial task; completed algorithms cross as column bytes."""
    algorithm, stats = _execute_trial_stats(payload, seed, incumbent)
    if algorithm is None:
        return None, stats
    return (algorithm.table.to_bytes(), dict(algorithm.metadata)), stats


def _run_trial_chunk_stats(
    ref, incumbent: Optional[float], seeds: List[int]
) -> List[Tuple[Optional[Tuple[bytes, dict]], Dict[str, Any]]]:
    """Chunked stats trial task: broadcast ref, shared incumbent bound, seeds."""
    payload = _fetch_payload(ref)
    return [_run_trial_task_stats(payload, seed, incumbent) for seed in seeds]


def _decode_stats_outcome(
    payload: TrialPayload,
    outcome: Tuple[Optional[Tuple[bytes, dict]], Dict[str, Any]],
) -> Tuple[Optional[CollectiveAlgorithm], Dict[str, Any]]:
    """Rebuild a stats trial's algorithm (if it completed) from worker bytes."""
    packed, stats = outcome
    if packed is None:
        return None, stats
    table_bytes, metadata = packed
    algorithm, _rounds = _decode_trial_outcome(
        payload, (table_bytes, metadata, stats["rounds"])
    )
    return algorithm, stats


def _floor_skip_stats(seed: int) -> Tuple[None, Dict[str, Any]]:
    """Stats entry for a trial skipped outright by floor termination.

    A skipped trial never starts, so it is recorded as pruned at round 0
    with zero wall clock — distinguishable from a mid-trial prune (positive
    ``pruned_at_round``) and from a completed trial (``collective_time``).
    """
    return None, {
        "seed": seed,
        "rounds": 0,
        "collective_time": None,
        "pruned_at_round": 0,
        "wall_seconds": 0.0,
    }


def _search_floor(payload: TrialPayload) -> Optional[float]:
    """The round-0 :class:`~repro.core.matching.TrialBound` of ``payload``.

    Evaluated before any transfer commits, the bound depends only on the
    topology and the collective — not on a trial's random choices — so it is
    a valid lower bound on *every* trial's final collective time.  Returns
    ``None`` when the bound degenerates to zero (no numpy, no owed chunks),
    in which case floor termination can never fire.
    """
    engine = payload.engine
    ten = engine.ten_factory(payload.topology, payload.chunk_size)
    state = engine.state_factory(
        payload.topology.num_npus,
        payload.pattern.precondition(),
        payload.pattern.postcondition(),
    )
    floor = TrialBound(ten, state, payload.hop_distances).value(0.0, 0.0)
    return floor if floor > 0.0 else None


def _run_stats_trials(
    payload: TrialPayload,
    seeds: List[int],
    backend,
    workers: Optional[int],
    *,
    prune: bool,
    wave_size: Optional[int],
    floor: Optional[float] = None,
) -> List[Tuple[Optional[CollectiveAlgorithm], Dict[str, Any]]]:
    """Seed-ordered trial fan-out with per-trial stats and incumbent sharing.

    Serial execution threads the incumbent through every trial (maximal
    pruning).  Parallel backends run the seeds in consecutive *waves* and
    re-share the best completed time between waves — a wave only ever sees an
    incumbent at least as large as the final one, so sharing it late prunes
    less but never differently (any pruned trial is provably worse than some
    completed trial).  Process-based backends reuse the broadcast plane: one
    payload blob for all waves, thin ``(ref, incumbent, seeds)`` chunk tasks.

    When ``floor`` is given (the round-0 bound, see :func:`_search_floor`)
    and the incumbent reaches it, every remaining seed is skipped outright:
    no trial can be *strictly* better than the floor, and the strict-``<``
    best-of selection never replaces the incumbent on a tie, so the winner
    is unchanged.
    """
    outcomes: List[Tuple[Optional[CollectiveAlgorithm], Dict[str, Any]]] = []
    incumbent: Optional[float] = None

    def absorb(wave_outcomes) -> None:
        nonlocal incumbent
        for algorithm, stats in wave_outcomes:
            if algorithm is not None:
                finished = algorithm.collective_time
                if incumbent is None or finished < incumbent:
                    incumbent = finished
        outcomes.extend(wave_outcomes)

    def at_floor() -> bool:
        return floor is not None and incumbent is not None and incumbent <= floor

    if backend is None or len(seeds) <= 1:
        for index, seed in enumerate(seeds):
            absorb([_execute_trial_stats(payload, seed, incumbent if prune else None)])
            if at_floor() and index + 1 < len(seeds):
                outcomes.extend(_floor_skip_stats(s) for s in seeds[index + 1 :])
                break
        return outcomes

    from repro.api.parallel import chunk_items, default_worker_count

    width = wave_size
    if width is None:
        width = 2 * (workers if workers else default_worker_count())
    width = max(width, 1)

    process_based = getattr(backend, "process_based", False)
    ref = None
    if process_based:
        try:
            blob = payload.to_bytes()
        except SynthesisError:
            blob = None  # unregistered engine: per-trial pickle fallback
        if blob is not None:
            from repro.api import broadcast  # deferred: avoids an import cycle

            ref = broadcast.publish(blob)
    try:
        for start in range(0, len(seeds), width):
            wave = seeds[start : start + width]
            shared = incumbent if prune else None
            if not process_based:
                wave_outcomes = backend.map(
                    partial(_execute_trial_stats, payload, incumbent=shared),
                    wave,
                    max_workers=workers,
                )
            elif ref is not None:
                packed_chunks = backend.map(
                    partial(_run_trial_chunk_stats, ref, shared),
                    chunk_items(wave, workers),
                    max_workers=workers,
                )
                wave_outcomes = [
                    _decode_stats_outcome(payload, item)
                    for chunk in packed_chunks
                    for item in chunk
                ]
            else:
                packed = backend.map(
                    partial(_run_trial_task_stats, payload, incumbent=shared),
                    wave,
                    max_workers=workers,
                )
                wave_outcomes = [_decode_stats_outcome(payload, item) for item in packed]
            absorb(wave_outcomes)
            if at_floor() and start + width < len(seeds):
                outcomes.extend(_floor_skip_stats(s) for s in seeds[start + width :])
                break
    finally:
        if ref is not None:
            from repro.api import broadcast

            broadcast.release(ref)
    return outcomes


@dataclass
class SynthesisResult:
    """Outcome of a synthesis call.

    Attributes
    ----------
    algorithm:
        The best collective algorithm found across all trials.
    wall_clock_seconds:
        Total synthesis time across all trials (the Fig. 19 / Table V metric).
    trials:
        Number of randomized trials that were run.
    rounds:
        Number of TEN time spans processed by the winning trial (0 when the
        algorithm was composed from sub-syntheses, e.g. All-Reduce).
    trial_stats:
        Per-trial bookkeeping (one dict per trial, in seed order: ``seed``,
        ``rounds``, ``collective_time``, ``pruned_at_round``,
        ``wall_seconds``; composed syntheses add a ``phase`` key).  ``None``
        unless the config asked for it (``collect_trial_stats`` /
        ``incumbent_pruning``).
    """

    algorithm: CollectiveAlgorithm
    wall_clock_seconds: float
    trials: int
    rounds: int = 0
    trial_stats: Optional[List[Dict[str, Any]]] = None

    @property
    def full_trials(self) -> Optional[int]:
        """Trials that ran to completion, or ``None`` without stats."""
        if self.trial_stats is None:
            return None
        return sum(1 for stats in self.trial_stats if stats["pruned_at_round"] is None)

    @property
    def pruned_trials(self) -> Optional[int]:
        """Trials aborted by incumbent pruning, or ``None`` without stats."""
        if self.trial_stats is None:
            return None
        return sum(1 for stats in self.trial_stats if stats["pruned_at_round"] is not None)


class TacosSynthesizer:
    """Autonomous topology-aware collective algorithm synthesizer.

    Parameters
    ----------
    config:
        Search configuration; defaults to a single deterministic trial with
        lowest-cost-link prioritization enabled.
    engine:
        The chunk-state core to drive; defaults to :data:`FLAT_ENGINE`.

    Examples
    --------
    >>> from repro.topology import build_ring
    >>> from repro.collectives import AllGather
    >>> synthesizer = TacosSynthesizer()
    >>> algorithm = synthesizer.synthesize(build_ring(4), AllGather(4), collective_size=4e6)
    >>> algorithm.num_transfers > 0
    True
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        engine: Optional[SynthesisEngine] = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.engine = engine or FLAT_ENGINE

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> CollectiveAlgorithm:
        """Synthesize a collective algorithm; convenience wrapper returning only the algorithm."""
        return self.synthesize_with_stats(topology, pattern, collective_size).algorithm

    def synthesize_with_stats(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Synthesize a collective algorithm and report synthesis statistics."""
        if collective_size <= 0:
            raise SynthesisError(f"collective size must be positive, got {collective_size}")
        if pattern.num_npus != topology.num_npus:
            raise SynthesisError(
                f"pattern spans {pattern.num_npus} NPUs but topology {topology.name} has {topology.num_npus}"
            )
        started = _time.perf_counter()

        if isinstance(pattern, AllReduce):
            result = self._synthesize_all_reduce(topology, pattern, collective_size)
        elif pattern.requires_reduction:
            result = self._synthesize_by_reversal(topology, pattern, collective_size)
        else:
            result = self._synthesize_direct(topology, pattern, collective_size)

        result.wall_clock_seconds = _time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Pattern dispatch
    # ------------------------------------------------------------------
    def _synthesize_all_reduce(
        self,
        topology: Topology,
        pattern: AllReduce,
        collective_size: float,
    ) -> SynthesisResult:
        """All-Reduce = Reduce-Scatter followed by All-Gather (Sec. IV-E)."""
        reduce_scatter = self._synthesize_by_reversal(
            topology, pattern.reduce_scatter_phase(), collective_size
        )
        all_gather = self._synthesize_direct(
            topology, pattern.all_gather_phase(), collective_size
        )
        combined = reduce_scatter.algorithm.concatenated(
            all_gather.algorithm, pattern_name=pattern.name
        )
        combined.topology_name = topology.name
        combined.metadata["reduce_scatter_time"] = reduce_scatter.algorithm.collective_time
        combined.metadata["all_gather_time"] = all_gather.algorithm.collective_time
        trial_stats = None
        if reduce_scatter.trial_stats is not None or all_gather.trial_stats is not None:
            trial_stats = []
            for phase_name, phase in (
                ("reduce_scatter", reduce_scatter),
                ("all_gather", all_gather),
            ):
                for stats in phase.trial_stats or []:
                    tagged = dict(stats)
                    tagged["phase"] = phase_name
                    trial_stats.append(tagged)
        return SynthesisResult(
            algorithm=combined,
            wall_clock_seconds=0.0,
            trials=self.config.trials,
            rounds=reduce_scatter.rounds + all_gather.rounds,
            trial_stats=trial_stats,
        )

    def _synthesize_by_reversal(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Synthesize a reduction collective via its non-reducing dual (Fig. 11)."""
        dual = pattern.non_reducing_dual()
        if dual is None:
            raise SynthesisError(
                f"{pattern.name} requires reduction but provides no non-reducing dual"
            )
        reversed_topology = topology.reversed()
        dual_result = self._synthesize_direct(reversed_topology, dual, collective_size)
        reversed_algorithm = dual_result.algorithm.reversed_in_time()
        reversed_algorithm.pattern_name = pattern.name
        reversed_algorithm.topology_name = topology.name
        reversed_algorithm.metadata["synthesized_via"] = f"reversal of {dual.name}"
        return SynthesisResult(
            algorithm=reversed_algorithm,
            wall_clock_seconds=0.0,
            trials=dual_result.trials,
            rounds=dual_result.rounds,
            trial_stats=dual_result.trial_stats,
        )

    # ------------------------------------------------------------------
    # Direct synthesis (non-reducing patterns)
    # ------------------------------------------------------------------
    def _synthesize_direct(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Run the randomized search directly on ``pattern`` and keep the best trial.

        Topology-level structures (adjacency, hop distances, cheaper-link
        reachability regions) are resolved once here — cached on the topology
        — and shared read-only by every trial.  Independent trials fan out
        through the pluggable execution backends (:mod:`repro.api.parallel`):
        serial, thread, or process, per the config or the ambient
        :func:`~repro.api.parallel.execution_scope`.  Every trial is seeded
        deterministically (:meth:`SynthesisConfig.trial_seed`) and the
        best-of-trials selection below is order-independent, so the chosen
        algorithm is byte-identical regardless of backend.
        """
        chunk_size = pattern.chunk_size(collective_size)

        hop_distances = None
        if self.config.enable_forwarding and self._needs_forwarding(pattern):
            hop_distances = topology.hop_distances()

        cheap_regions = None
        if self.config.prefer_lowest_cost_links and not topology.is_homogeneous():
            cheap_regions = topology.cheaper_reachability_regions(chunk_size)

        # Warm the adjacency caches before fanning out so concurrent trials
        # only ever read them (process workers inherit them via the payload).
        topology.in_adjacency()
        topology.out_adjacency()

        payload = TrialPayload(
            topology=topology,
            pattern=pattern,
            collective_size=float(collective_size),
            chunk_size=chunk_size,
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
            engine=self.engine,
            prefer_lowest_cost=self.config.prefer_lowest_cost_links,
            max_rounds=self.config.max_rounds,
        )
        seeds = self._trial_seeds(topology)
        backend, workers = self._trial_execution()
        if self.config.incumbent_pruning or self.config.collect_trial_stats:
            floor = None
            if self.config.floor_termination:
                floor = _search_floor(payload)
            stats_outcomes = _run_stats_trials(
                payload,
                seeds,
                backend,
                workers,
                prune=self.config.incumbent_pruning,
                wave_size=self.config.wave_size,
                floor=floor,
            )
            best_algorithm = None
            best_rounds = 0
            for algorithm, stats in stats_outcomes:
                if algorithm is None:
                    continue
                if (
                    best_algorithm is None
                    or algorithm.collective_time < best_algorithm.collective_time
                ):
                    best_algorithm = algorithm
                    best_rounds = stats["rounds"]
            if best_algorithm is None:  # unreachable: the first trial of the
                # first wave runs with no incumbent and therefore completes
                raise SynthesisError("every synthesis trial was pruned")
            return SynthesisResult(
                algorithm=best_algorithm,
                wall_clock_seconds=0.0,
                trials=len(seeds),
                rounds=best_rounds,
                trial_stats=[stats for _, stats in stats_outcomes],
            )
        if backend is not None and len(seeds) > 1:
            if getattr(backend, "process_based", False):
                # Broadcast-once/submit-thin: the payload crosses the process
                # boundary once as content-hash-addressed columnar bytes and
                # the seeds follow in thin chunks; results come back as
                # columnar TransferTable bytes.  No per-trial object graphs
                # on the wire in either direction.
                outcomes = _fan_out_trials(payload, seeds, backend, workers)
            else:
                outcomes = backend.map(
                    partial(_execute_trial, payload), seeds, max_workers=workers
                )
        else:
            outcomes = [_execute_trial(payload, seed) for seed in seeds]

        # First-strictly-better selection over the seed-ordered outcomes: the
        # winner does not depend on scheduling, so parallel and serial runs
        # pick the same algorithm.
        best_algorithm: Optional[CollectiveAlgorithm] = None
        best_rounds = 0
        for algorithm, rounds in outcomes:
            if best_algorithm is None or algorithm.collective_time < best_algorithm.collective_time:
                best_algorithm = algorithm
                best_rounds = rounds
        assert best_algorithm is not None  # trials >= 1 guaranteed by SynthesisConfig
        return SynthesisResult(
            algorithm=best_algorithm,
            wall_clock_seconds=0.0,
            trials=self.config.trials,
            rounds=best_rounds,
        )

    def _trial_seeds(self, topology: Topology) -> List[int]:
        """The per-trial seed list, in selection (tie-break) order.

        The uniform search runs ``seed + i`` for ``i in range(trials)``.
        Subclasses may reorder or substitute seeds — the guided tier
        (:class:`repro.search.GuidedSynthesizer`) front-loads winning seeds of
        previously synthesized specs on the same topology family — but the
        list length is the trial budget and earlier entries win ties.
        """
        return [self.config.trial_seed(trial) for trial in range(self.config.trials)]

    def _trial_execution(self):
        """Resolve the ``(backend, workers)`` pair governing the trial fan-out.

        Explicit config fields win; with neither set, the ambient
        :func:`~repro.api.parallel.execution_scope` policy applies (serial
        when none is installed).  ``trial_workers`` alone keeps the historical
        thread-pool behaviour.
        """
        from repro.api.parallel import (  # deferred: avoids an import cycle
            current_execution,
            resolve_backend,
        )

        config = self.config
        if config.execution is not None:
            backend = resolve_backend(config.execution)
            workers = config.trial_workers
            if backend.name == "serial":
                return None, None
            return backend, workers
        if config.trial_workers is not None:
            if config.trial_workers <= 1:
                return None, None
            return resolve_backend("thread"), config.trial_workers
        backend, workers = current_execution()
        if backend is not None and backend.name == "serial":
            return None, None
        return backend, workers

    def _run_trial(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
        seed: int,
        *,
        chunk_size: float,
        hop_distances: Optional[List[List[int]]],
        cheap_regions: Optional[dict],
    ) -> tuple:
        """One randomized synthesis run (kept as a thin compatibility wrapper)."""
        payload = TrialPayload(
            topology=topology,
            pattern=pattern,
            collective_size=float(collective_size),
            chunk_size=chunk_size,
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
            engine=self.engine,
            prefer_lowest_cost=self.config.prefer_lowest_cost_links,
            max_rounds=self.config.max_rounds,
        )
        return _execute_trial(payload, seed)

    @staticmethod
    def _needs_forwarding(pattern: CollectivePattern) -> bool:
        """Whether some chunk must traverse NPUs that never request it.

        This is the case exactly when a chunk is absent from some NPU's
        postcondition — then that NPU can only ever act as a relay, which the
        plain Alg. 1 matching never schedules.
        """
        post = pattern.postcondition()
        all_chunks = pattern.all_chunks()
        return any(post.get(npu, frozenset()) != all_chunks for npu in range(pattern.num_npus))


def _cheaper_reachability_regions(topology: Topology, chunk_size: float):
    """Per link-cost tier, the NPUs that can reach each destination over cheaper links only.

    Returns ``{cost: regions}`` where ``regions[dest]`` is a frozenset of NPUs
    from which ``dest`` is reachable using only links whose one-chunk cost is
    strictly below ``cost``.  Delegates to the cached topology-level structure
    (:meth:`repro.topology.topology.Topology.cheaper_reachability_regions`).
    """
    return topology.cheaper_reachability_regions(chunk_size)


def _all_pairs_hop_distances(topology: Topology) -> List[List[int]]:
    """Hop distances between every NPU pair via per-source BFS (cached on the topology)."""
    return topology.hop_distances()


def synthesize(
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
    *,
    config: Optional[SynthesisConfig] = None,
) -> CollectiveAlgorithm:
    """Module-level convenience wrapper around :class:`TacosSynthesizer`."""
    return TacosSynthesizer(config).synthesize(topology, pattern, collective_size)
