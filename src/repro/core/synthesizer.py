"""TACOS end-to-end collective algorithm synthesis (Alg. 2 of the paper).

The synthesizer starts from the TEN at ``t = 0``, runs the utilization
maximizing matching algorithm for the current time span, expands the TEN to
the next time span, and repeats until every postcondition is satisfied.
Reduction collectives are handled by reversal (Fig. 11): a Reduce-Scatter is
synthesized as an All-Gather over the link-reversed topology and reversed in
time; an All-Reduce is a Reduce-Scatter followed by an All-Gather.
"""

from __future__ import annotations

import random
import time as _time
import warnings
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.collectives.all_reduce import AllReduce
from repro.collectives.pattern import CollectivePattern
from repro.core.algorithm import CollectiveAlgorithm
from repro.core.config import SynthesisConfig
from repro.core.matching import MatchingState, run_matching_round
from repro.errors import SynthesisError
from repro.kernels import NUMBA_AVAILABLE
from repro.kernels.matching import native_run_matching_round
from repro.ten.network import TimeExpandedNetwork
from repro.topology.topology import Topology

__all__ = [
    "SynthesisEngine",
    "ENGINES",
    "FLAT_ENGINE",
    "NATIVE_ENGINE",
    "SynthesisResult",
    "TacosSynthesizer",
    "TrialPayload",
    "register_engine",
    "resolve_engine",
    "synthesize",
]


@dataclass(frozen=True)
class SynthesisEngine:
    """The pluggable chunk-state core driven by :class:`TacosSynthesizer`.

    An engine bundles the three ingredients of one synthesis trial: the TEN
    factory, the matching-state factory, and the per-span matching round.
    The default :data:`FLAT_ENGINE` is the array-backed implementation; the
    benchmark subsystem plugs in the frozen pre-refactor dict/set engine
    (:data:`repro.bench.reference.REFERENCE_ENGINE`) to prove the two produce
    identical algorithms on fixed seeds.
    """

    name: str
    ten_factory: Callable = TimeExpandedNetwork
    state_factory: Callable = MatchingState
    matching_round: Callable = run_matching_round


#: Default engine: flat array-backed state, CSR-indexed TEN.
FLAT_ENGINE = SynthesisEngine(name="flat")

#: Native engine: the numba matching-round kernel over the same flat state.
#: Safe to use even without numba — the kernel wrapper delegates every round
#: to the flat implementation then — but :func:`resolve_engine` resolves the
#: *name* ``"native"`` to :data:`FLAT_ENGINE` (with one warning) in that
#: case, so reports never claim a native tier that never compiled.
NATIVE_ENGINE = SynthesisEngine(name="native", matching_round=native_run_matching_round)

#: By-name registry of synthesis engines (the ``--engine`` CLI/bench seam).
#: The frozen reference engine registers itself on import of
#: :mod:`repro.bench.reference`.
ENGINES: Dict[str, SynthesisEngine] = {}


def register_engine(engine: SynthesisEngine) -> SynthesisEngine:
    """Add ``engine`` to :data:`ENGINES` under its name; returns it."""
    ENGINES[engine.name] = engine
    return engine


register_engine(FLAT_ENGINE)
register_engine(NATIVE_ENGINE)

_warned_native_fallback = False


def resolve_engine(name: str) -> SynthesisEngine:
    """Look up an engine by name, degrading ``native`` gracefully.

    When ``"native"`` is requested on a host without numba, returns
    :data:`FLAT_ENGINE` — the equivalence oracle the kernels are pinned
    against, so results are identical — and emits a single
    :class:`RuntimeWarning` per process.
    """
    if name == "native" and not NUMBA_AVAILABLE:
        from repro.kernels.matching import FORCE_PY_KERNEL

        if not FORCE_PY_KERNEL:
            global _warned_native_fallback
            if not _warned_native_fallback:
                _warned_native_fallback = True
                warnings.warn(
                    "native engine requested but numba is not installed; "
                    "falling back to the flat engine (install "
                    "tacos-repro[native] to enable compiled kernels)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return FLAT_ENGINE
    if name == "reference" and name not in ENGINES:
        # The frozen baseline lives in the bench subsystem; pull it in on
        # demand so `--engine reference` works from any entry point.
        import repro.bench.reference  # noqa: F401

    try:
        return ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise SynthesisError(f"unknown synthesis engine {name!r} (known: {known})") from None


@dataclass(frozen=True)
class TrialPayload:
    """Everything one randomized synthesis trial needs, minus its seed.

    Built once per :meth:`TacosSynthesizer._synthesize_direct` call and shared
    by every trial of the fan-out.  The payload (and the built-in engines) is
    picklable, so the same object drives serial loops, thread pools, and —
    via the module-level :func:`_run_trial_task` — process pools.
    """

    topology: Topology
    pattern: CollectivePattern
    collective_size: float
    chunk_size: float
    hop_distances: Optional[List[List[int]]]
    cheap_regions: Optional[dict]
    engine: SynthesisEngine
    prefer_lowest_cost: bool
    max_rounds: int


def _execute_trial(payload: TrialPayload, seed: int) -> Tuple[CollectiveAlgorithm, int]:
    """One randomized synthesis run (Alg. 2): returns (algorithm, rounds)."""
    engine = payload.engine
    topology = payload.topology
    pattern = payload.pattern
    ten = engine.ten_factory(topology, payload.chunk_size)
    state = engine.state_factory(
        topology.num_npus, pattern.precondition(), pattern.postcondition()
    )
    matching_round = engine.matching_round
    rng = random.Random(seed)

    transfers = []
    current_time = 0.0
    rounds = 0
    while not state.done:
        rounds += 1
        if rounds > payload.max_rounds:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} exceeded "
                f"{payload.max_rounds} time spans"
            )
        new_transfers = matching_round(
            ten,
            state,
            current_time,
            rng,
            prefer_lowest_cost=payload.prefer_lowest_cost,
            enable_forwarding=payload.hop_distances is not None,
            hop_distances=payload.hop_distances,
            cheap_regions=payload.cheap_regions,
        )
        transfers.extend(new_transfers)
        if state.done:
            break
        next_time = ten.next_event_after(current_time)
        if next_time is None:
            raise SynthesisError(
                f"synthesis of {pattern.name} on {topology.name} stalled at t={current_time:.3e}s; "
                "is the topology strongly connected?"
            )
        current_time = next_time

    algorithm = CollectiveAlgorithm(
        transfers=transfers,
        num_npus=topology.num_npus,
        chunk_size=payload.chunk_size,
        collective_size=float(payload.collective_size),
        pattern_name=pattern.name,
        topology_name=topology.name,
        metadata={"seed": seed, "rounds": rounds},
    )
    return algorithm, rounds


def _run_trial_task(payload: TrialPayload, seed: int) -> Tuple[bytes, dict, int]:
    """Process-pool trial task: the algorithm crosses back as raw column bytes.

    Returning ``TransferTable.to_bytes()`` instead of the object graph keeps
    the inter-process transport compact and bit-exact — the parent rebuilds
    an identical algorithm with :func:`_decode_trial_outcome`.
    """
    algorithm, rounds = _execute_trial(payload, seed)
    return algorithm.table.to_bytes(), dict(algorithm.metadata), rounds


def _decode_trial_outcome(
    payload: TrialPayload, outcome: Tuple[bytes, dict, int]
) -> Tuple[CollectiveAlgorithm, int]:
    """Rebuild a trial's algorithm from the bytes a process worker returned."""
    from repro.core.transfers import TransferTable

    table_bytes, metadata, rounds = outcome
    algorithm = CollectiveAlgorithm.from_table(
        TransferTable.from_bytes(table_bytes),
        num_npus=payload.topology.num_npus,
        chunk_size=payload.chunk_size,
        collective_size=float(payload.collective_size),
        pattern_name=payload.pattern.name,
        topology_name=payload.topology.name,
        metadata=metadata,
    )
    return algorithm, rounds


@dataclass
class SynthesisResult:
    """Outcome of a synthesis call.

    Attributes
    ----------
    algorithm:
        The best collective algorithm found across all trials.
    wall_clock_seconds:
        Total synthesis time across all trials (the Fig. 19 / Table V metric).
    trials:
        Number of randomized trials that were run.
    rounds:
        Number of TEN time spans processed by the winning trial (0 when the
        algorithm was composed from sub-syntheses, e.g. All-Reduce).
    """

    algorithm: CollectiveAlgorithm
    wall_clock_seconds: float
    trials: int
    rounds: int = 0


class TacosSynthesizer:
    """Autonomous topology-aware collective algorithm synthesizer.

    Parameters
    ----------
    config:
        Search configuration; defaults to a single deterministic trial with
        lowest-cost-link prioritization enabled.
    engine:
        The chunk-state core to drive; defaults to :data:`FLAT_ENGINE`.

    Examples
    --------
    >>> from repro.topology import build_ring
    >>> from repro.collectives import AllGather
    >>> synthesizer = TacosSynthesizer()
    >>> algorithm = synthesizer.synthesize(build_ring(4), AllGather(4), collective_size=4e6)
    >>> algorithm.num_transfers > 0
    True
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        engine: Optional[SynthesisEngine] = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.engine = engine or FLAT_ENGINE

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> CollectiveAlgorithm:
        """Synthesize a collective algorithm; convenience wrapper returning only the algorithm."""
        return self.synthesize_with_stats(topology, pattern, collective_size).algorithm

    def synthesize_with_stats(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Synthesize a collective algorithm and report synthesis statistics."""
        if collective_size <= 0:
            raise SynthesisError(f"collective size must be positive, got {collective_size}")
        if pattern.num_npus != topology.num_npus:
            raise SynthesisError(
                f"pattern spans {pattern.num_npus} NPUs but topology {topology.name} has {topology.num_npus}"
            )
        started = _time.perf_counter()

        if isinstance(pattern, AllReduce):
            result = self._synthesize_all_reduce(topology, pattern, collective_size)
        elif pattern.requires_reduction:
            result = self._synthesize_by_reversal(topology, pattern, collective_size)
        else:
            result = self._synthesize_direct(topology, pattern, collective_size)

        result.wall_clock_seconds = _time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Pattern dispatch
    # ------------------------------------------------------------------
    def _synthesize_all_reduce(
        self,
        topology: Topology,
        pattern: AllReduce,
        collective_size: float,
    ) -> SynthesisResult:
        """All-Reduce = Reduce-Scatter followed by All-Gather (Sec. IV-E)."""
        reduce_scatter = self._synthesize_by_reversal(
            topology, pattern.reduce_scatter_phase(), collective_size
        )
        all_gather = self._synthesize_direct(
            topology, pattern.all_gather_phase(), collective_size
        )
        combined = reduce_scatter.algorithm.concatenated(
            all_gather.algorithm, pattern_name=pattern.name
        )
        combined.topology_name = topology.name
        combined.metadata["reduce_scatter_time"] = reduce_scatter.algorithm.collective_time
        combined.metadata["all_gather_time"] = all_gather.algorithm.collective_time
        return SynthesisResult(
            algorithm=combined,
            wall_clock_seconds=0.0,
            trials=self.config.trials,
            rounds=reduce_scatter.rounds + all_gather.rounds,
        )

    def _synthesize_by_reversal(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Synthesize a reduction collective via its non-reducing dual (Fig. 11)."""
        dual = pattern.non_reducing_dual()
        if dual is None:
            raise SynthesisError(
                f"{pattern.name} requires reduction but provides no non-reducing dual"
            )
        reversed_topology = topology.reversed()
        dual_result = self._synthesize_direct(reversed_topology, dual, collective_size)
        reversed_algorithm = dual_result.algorithm.reversed_in_time()
        reversed_algorithm.pattern_name = pattern.name
        reversed_algorithm.topology_name = topology.name
        reversed_algorithm.metadata["synthesized_via"] = f"reversal of {dual.name}"
        return SynthesisResult(
            algorithm=reversed_algorithm,
            wall_clock_seconds=0.0,
            trials=dual_result.trials,
            rounds=dual_result.rounds,
        )

    # ------------------------------------------------------------------
    # Direct synthesis (non-reducing patterns)
    # ------------------------------------------------------------------
    def _synthesize_direct(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
    ) -> SynthesisResult:
        """Run the randomized search directly on ``pattern`` and keep the best trial.

        Topology-level structures (adjacency, hop distances, cheaper-link
        reachability regions) are resolved once here — cached on the topology
        — and shared read-only by every trial.  Independent trials fan out
        through the pluggable execution backends (:mod:`repro.api.parallel`):
        serial, thread, or process, per the config or the ambient
        :func:`~repro.api.parallel.execution_scope`.  Every trial is seeded
        deterministically (:meth:`SynthesisConfig.trial_seed`) and the
        best-of-trials selection below is order-independent, so the chosen
        algorithm is byte-identical regardless of backend.
        """
        chunk_size = pattern.chunk_size(collective_size)

        hop_distances = None
        if self.config.enable_forwarding and self._needs_forwarding(pattern):
            hop_distances = topology.hop_distances()

        cheap_regions = None
        if self.config.prefer_lowest_cost_links and not topology.is_homogeneous():
            cheap_regions = topology.cheaper_reachability_regions(chunk_size)

        # Warm the adjacency caches before fanning out so concurrent trials
        # only ever read them (process workers inherit them via the payload).
        topology.in_adjacency()
        topology.out_adjacency()

        payload = TrialPayload(
            topology=topology,
            pattern=pattern,
            collective_size=float(collective_size),
            chunk_size=chunk_size,
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
            engine=self.engine,
            prefer_lowest_cost=self.config.prefer_lowest_cost_links,
            max_rounds=self.config.max_rounds,
        )
        seeds = [self.config.trial_seed(trial) for trial in range(self.config.trials)]
        backend, workers = self._trial_execution()
        if backend is not None and len(seeds) > 1:
            if backend.name == "process":
                # Module-level task + columnar byte transport: picklable both
                # ways, no per-transfer object graphs on the wire.
                packed = backend.map(
                    partial(_run_trial_task, payload), seeds, max_workers=workers
                )
                outcomes = [_decode_trial_outcome(payload, item) for item in packed]
            else:
                outcomes = backend.map(
                    partial(_execute_trial, payload), seeds, max_workers=workers
                )
        else:
            outcomes = [_execute_trial(payload, seed) for seed in seeds]

        # First-strictly-better selection over the seed-ordered outcomes: the
        # winner does not depend on scheduling, so parallel and serial runs
        # pick the same algorithm.
        best_algorithm: Optional[CollectiveAlgorithm] = None
        best_rounds = 0
        for algorithm, rounds in outcomes:
            if best_algorithm is None or algorithm.collective_time < best_algorithm.collective_time:
                best_algorithm = algorithm
                best_rounds = rounds
        assert best_algorithm is not None  # trials >= 1 guaranteed by SynthesisConfig
        return SynthesisResult(
            algorithm=best_algorithm,
            wall_clock_seconds=0.0,
            trials=self.config.trials,
            rounds=best_rounds,
        )

    def _trial_execution(self):
        """Resolve the ``(backend, workers)`` pair governing the trial fan-out.

        Explicit config fields win; with neither set, the ambient
        :func:`~repro.api.parallel.execution_scope` policy applies (serial
        when none is installed).  ``trial_workers`` alone keeps the historical
        thread-pool behaviour.
        """
        from repro.api.parallel import (  # deferred: avoids an import cycle
            current_execution,
            resolve_backend,
        )

        config = self.config
        if config.execution is not None:
            backend = resolve_backend(config.execution)
            workers = config.trial_workers
            if backend.name == "serial":
                return None, None
            return backend, workers
        if config.trial_workers is not None:
            if config.trial_workers <= 1:
                return None, None
            return resolve_backend("thread"), config.trial_workers
        backend, workers = current_execution()
        if backend is not None and backend.name == "serial":
            return None, None
        return backend, workers

    def _run_trial(
        self,
        topology: Topology,
        pattern: CollectivePattern,
        collective_size: float,
        seed: int,
        *,
        chunk_size: float,
        hop_distances: Optional[List[List[int]]],
        cheap_regions: Optional[dict],
    ) -> tuple:
        """One randomized synthesis run (kept as a thin compatibility wrapper)."""
        payload = TrialPayload(
            topology=topology,
            pattern=pattern,
            collective_size=float(collective_size),
            chunk_size=chunk_size,
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
            engine=self.engine,
            prefer_lowest_cost=self.config.prefer_lowest_cost_links,
            max_rounds=self.config.max_rounds,
        )
        return _execute_trial(payload, seed)

    @staticmethod
    def _needs_forwarding(pattern: CollectivePattern) -> bool:
        """Whether some chunk must traverse NPUs that never request it.

        This is the case exactly when a chunk is absent from some NPU's
        postcondition — then that NPU can only ever act as a relay, which the
        plain Alg. 1 matching never schedules.
        """
        post = pattern.postcondition()
        all_chunks = pattern.all_chunks()
        return any(post.get(npu, frozenset()) != all_chunks for npu in range(pattern.num_npus))


def _cheaper_reachability_regions(topology: Topology, chunk_size: float):
    """Per link-cost tier, the NPUs that can reach each destination over cheaper links only.

    Returns ``{cost: regions}`` where ``regions[dest]`` is a frozenset of NPUs
    from which ``dest`` is reachable using only links whose one-chunk cost is
    strictly below ``cost``.  Delegates to the cached topology-level structure
    (:meth:`repro.topology.topology.Topology.cheaper_reachability_regions`).
    """
    return topology.cheaper_reachability_regions(chunk_size)


def _all_pairs_hop_distances(topology: Topology) -> List[List[int]]:
    """Hop distances between every NPU pair via per-source BFS (cached on the topology)."""
    return topology.hop_distances()


def synthesize(
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
    *,
    config: Optional[SynthesisConfig] = None,
) -> CollectiveAlgorithm:
    """Module-level convenience wrapper around :class:`TacosSynthesizer`."""
    return TacosSynthesizer(config).synthesize(topology, pattern, collective_size)
