"""Network Utilization Maximizing Matching (Alg. 1 of the paper).

Given the TEN state at one time span ``t``, the matching algorithm iterates
over the *unsatisfied postconditions* — (destination NPU, chunk) pairs the
destination still needs — in random order.  For each pair it backtracks the
destination's idle incoming links, collects the candidate source NPUs that
already hold the chunk, and randomly picks one (preferring the lowest-cost
link on heterogeneous networks).  Each matched link is occupied for the whole
span, so at most one chunk rides a link at a time and congestion never forms.

An optional *forwarding* pass extends Alg. 1 for rooted and personalized
collectives (Gather / Scatter / All-to-All): when a requested chunk is not yet
adjacent to its destination, it is pushed one hop closer along an idle link.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.algorithm import ChunkTransfer
from repro.ten.network import TimeExpandedNetwork

__all__ = ["MatchingState", "run_matching_round"]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-12


class MatchingState:
    """Mutable chunk-ownership state shared across matching rounds.

    Attributes
    ----------
    holdings:
        ``holdings[npu][chunk]`` is the time at which ``npu`` acquired
        ``chunk`` (0.0 for precondition chunks).
    unsatisfied:
        The remaining (dest, chunk) postconditions.
    """

    def __init__(
        self,
        num_npus: int,
        precondition: Dict[int, frozenset],
        postcondition: Dict[int, frozenset],
    ) -> None:
        self.num_npus = num_npus
        self.holdings: List[Dict[int, float]] = [dict() for _ in range(num_npus)]
        for npu, chunks in precondition.items():
            for chunk in chunks:
                self.holdings[npu][chunk] = 0.0
        self.unsatisfied: Set[Tuple[int, int]] = set()
        for npu in range(num_npus):
            needed = postcondition.get(npu, frozenset()) - precondition.get(npu, frozenset())
            for chunk in needed:
                self.unsatisfied.add((npu, chunk))

    def holds(self, npu: int, chunk: int, time: float) -> bool:
        """Whether ``npu`` holds ``chunk`` no later than ``time``."""
        acquired = self.holdings[npu].get(chunk)
        return acquired is not None and acquired <= time + _TIME_EPS

    def acquisition_time(self, npu: int, chunk: int) -> Optional[float]:
        """Time at which ``npu`` holds (or is scheduled to receive) ``chunk``, if any."""
        return self.holdings[npu].get(chunk)

    def will_hold(self, npu: int, chunk: int) -> bool:
        """Whether ``npu`` holds or is already scheduled to receive ``chunk``."""
        return chunk in self.holdings[npu]

    def grant(self, npu: int, chunk: int, time: float) -> None:
        """Record that ``npu`` acquires ``chunk`` at ``time``."""
        existing = self.holdings[npu].get(chunk)
        if existing is None or time < existing:
            self.holdings[npu][chunk] = time
        self.unsatisfied.discard((npu, chunk))

    @property
    def done(self) -> bool:
        """Whether every postcondition has been satisfied or scheduled."""
        return not self.unsatisfied


def _cheaper_source_pending(
    ten: TimeExpandedNetwork,
    state: "MatchingState",
    dest: int,
    chunk: int,
    candidates: Sequence[Tuple[int, int]],
    cheap_regions: Optional[Dict[float, List[frozenset]]],
) -> bool:
    """Whether ``chunk`` can still reach ``dest`` over strictly cheaper links only.

    This implements the lower-cost-link prioritization of Sec. IV-F for
    heterogeneous networks: if the chunk is already held — or scheduled to be
    received — by some NPU from which ``dest`` is reachable using only links
    strictly cheaper than the best currently matchable candidate, the match is
    deferred.  Burning a scarce high-cost (low-bandwidth) link on a chunk that
    the cheap portion of the network can deliver shortly wastes exactly the
    capacity that limits the collective.  On homogeneous topologies there is
    no strictly cheaper tier, so this never defers.
    """
    if cheap_regions is None:
        return False
    best_available = min(ten.link_cost(link) for link in candidates)
    region_by_dest = cheap_regions.get(best_available)
    if region_by_dest is None:
        return False
    for holder in region_by_dest[dest]:
        if state.acquisition_time(holder, chunk) is not None:
            return True
    return False


def _pick_link(
    candidates: Sequence[Tuple[int, int]],
    ten: TimeExpandedNetwork,
    rng: random.Random,
    prefer_lowest_cost: bool,
) -> Tuple[int, int]:
    """Randomly select one candidate link, optionally restricted to the cheapest."""
    if prefer_lowest_cost and len(candidates) > 1:
        best = min(ten.link_cost(key) for key in candidates)
        cheapest = [key for key in candidates if ten.link_cost(key) <= best + _TIME_EPS]
        return rng.choice(cheapest)
    return rng.choice(list(candidates))


def run_matching_round(
    ten: TimeExpandedNetwork,
    state: MatchingState,
    time: float,
    rng: random.Random,
    *,
    prefer_lowest_cost: bool = True,
    enable_forwarding: bool = True,
    hop_distances: Optional[List[List[int]]] = None,
    cheap_regions: Optional[Dict[float, List[frozenset]]] = None,
) -> List[ChunkTransfer]:
    """Run Alg. 1 for one time span; return the link-chunk matches created.

    Parameters
    ----------
    ten:
        The time-expanded network state (mutated: matched links are occupied).
    state:
        Chunk ownership state (mutated: destinations are granted chunks at
        their arrival times).
    time:
        The current time span ``t``.
    rng:
        Random source driving the shuffles and tie-breaking choices.
    prefer_lowest_cost:
        Restrict random link choice to the cheapest candidates (Sec. IV-F).
    enable_forwarding:
        Run the forwarding pass for postconditions that could not be matched
        directly (needed only for rooted/personalized collectives).
    hop_distances:
        ``hop_distances[a][b]`` = hop distance from ``a`` to ``b``; required
        when ``enable_forwarding`` is True (used to push chunks strictly
        closer to their destination and guarantee progress).
    cheap_regions:
        For heterogeneous topologies: ``cheap_regions[cost][dest]`` is the set
        of NPUs that can reach ``dest`` using only links strictly cheaper than
        ``cost``.  Used by the lower-cost-link prioritization to avoid
        redundant transfers over scarce expensive links; ``None`` disables the
        deferral (homogeneous topologies need none).
    """
    transfers: List[ChunkTransfer] = []

    # ------------------------------------------------------------------
    # Pass 1 — Alg. 1: direct matches onto destinations that request a chunk.
    # ------------------------------------------------------------------
    pending = list(state.unsatisfied)
    rng.shuffle(pending)
    deferred: List[Tuple[int, int]] = []
    for dest, chunk in pending:
        if (dest, chunk) not in state.unsatisfied:
            continue  # satisfied earlier in this round
        idle_links = ten.idle_in_links(dest, time)
        candidates = [
            (source, dest)
            for source, dest_ in idle_links
            if state.holds(source, chunk, time)
        ]
        if not candidates:
            deferred.append((dest, chunk))
            continue
        if prefer_lowest_cost and _cheaper_source_pending(
            ten, state, dest, chunk, candidates, cheap_regions
        ):
            # Lower-cost-link prioritization (Sec. IV-F): a strictly cheaper
            # incoming link will be able to supply this chunk soon (its source
            # is already scheduled to receive it), so do not burn an expensive
            # link on it now.  On homogeneous topologies this never triggers.
            continue
        link = _pick_link(candidates, ten, rng, prefer_lowest_cost)
        end = ten.occupy(link, time)
        state.grant(dest, chunk, end)
        transfers.append(
            ChunkTransfer(start=time, end=end, chunk=chunk, source=link[0], dest=link[1])
        )

    # ------------------------------------------------------------------
    # Pass 2 — forwarding: push still-unserved chunks one hop closer.
    # ------------------------------------------------------------------
    if enable_forwarding and deferred and hop_distances is not None:
        rng.shuffle(deferred)
        for dest, chunk in deferred:
            if (dest, chunk) not in state.unsatisfied:
                continue
            candidates = []
            for holder in range(state.num_npus):
                if not state.holds(holder, chunk, time):
                    continue
                for _, neighbour in ten.idle_out_links(holder, time):
                    if state.will_hold(neighbour, chunk):
                        continue
                    if hop_distances[neighbour][dest] < hop_distances[holder][dest]:
                        candidates.append((holder, neighbour))
            if not candidates:
                continue
            link = _pick_link(candidates, ten, rng, prefer_lowest_cost)
            end = ten.occupy(link, time)
            state.grant(link[1], chunk, end)
            transfers.append(
                ChunkTransfer(start=time, end=end, chunk=chunk, source=link[0], dest=link[1])
            )

    return transfers
