"""Network Utilization Maximizing Matching (Alg. 1 of the paper).

Given the TEN state at one time span ``t``, the matching algorithm iterates
over the *unsatisfied postconditions* — (destination NPU, chunk) pairs the
destination still needs — in random order.  For each pair it backtracks the
destination's idle incoming links, collects the candidate source NPUs that
already hold the chunk, and randomly picks one (preferring the lowest-cost
link on heterogeneous networks).  Each matched link is occupied for the whole
span, so at most one chunk rides a link at a time and congestion never forms.

An optional *forwarding* pass extends Alg. 1 for rooted and personalized
collectives (Gather / Scatter / All-to-All): when a requested chunk is not yet
adjacent to its destination, it is pushed one hop closer along an idle link.

The implementation is array-backed: chunk ownership lives in a flat
``num_npus x num_chunks`` acquisition-time array (``math.inf`` = never held),
per-chunk holder lists stay sorted, and each (dest, chunk) postcondition is a
single int code ``dest * num_chunks + chunk`` carrying a one-byte pair state:

* ``_SATISFIED`` — granted (or never needed);
* ``_NEEDED`` — open, but **no** in-neighbour of ``dest`` holds the chunk
  yet, so the pair provably has no candidate this span and is skipped with
  one byte probe;
* ``_MATCHABLE`` — open with at least one adjacent holder; only these pairs
  pay for candidate collection.

Pair states are promoted incrementally: every acquisition is pushed onto a
time-ordered activation heap, and at the start of each span the acquisitions
that have come due promote the pairs of their out-neighbours.  Combined with
per-NPU idle-link caching and an idle-link budget that stops the scan once
the span is saturated, a matching round touches each hopeless pair O(1)
times instead of re-deriving its empty candidate set.

Determinism contract
--------------------
The candidate enumeration order is part of the algorithm's observable
behaviour (it feeds the shuffles and ``rng.choice``), so it is fixed
explicitly rather than inherited from hash order:

* pending pairs are enumerated in ``(dest, chunk)`` lexicographic order
  before the shuffle (int codes sort exactly like the tuples);
* the per-round random permutation comes from :func:`shuffle_pairs`, which
  consumes the trial RNG identically regardless of the engine;
* candidate links follow the topology's neighbour insertion order;
* forwarding candidates enumerate holders in ascending NPU order.

The reference (pre-refactor dict/set) engine in
:mod:`repro.bench.reference` follows the same contract, which is what makes
fixed-seed outputs byte-identical across the two engines.
"""

from __future__ import annotations

import random
from bisect import insort
from heapq import heappop, heappush
from math import inf
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.algorithm import ChunkTransfer
from repro.ten.network import TimeExpandedNetwork

try:  # soft dependency: the core stays importable without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

__all__ = ["MatchingState", "TrialBound", "run_matching_round", "shuffle_pairs"]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-12

#: Below this round size the stdlib Fisher-Yates shuffle wins; above it the
#: C-speed numpy permutation does.  Part of the determinism contract: both
#: engines branch on the same constant, so they stay in RNG lockstep.
_NUMPY_SHUFFLE_MIN = 128


def _permuter(rng: random.Random):
    """The per-trial numpy generator backing large-round permutations.

    Seeded lazily with a single ``rng.getrandbits(64)`` draw the first time a
    trial encounters a large round, so both engines consume the trial RNG
    identically.
    """
    generator = getattr(rng, "_pair_permuter", None)
    if generator is None:
        generator = _np.random.default_rng(rng.getrandbits(64))
        rng._pair_permuter = generator
    return generator


def shuffle_pairs(pending: List, rng: random.Random) -> List:
    """Uniformly permute ``pending`` in place; return it.

    This is the determinism-contract permutation shared by the flat and the
    reference engines.  Small rounds use ``rng.shuffle``.  Large rounds (at
    least :data:`_NUMPY_SHUFFLE_MIN` pairs) are permuted by a numpy
    generator seeded once per trial RNG with a single ``rng.getrandbits(64)``
    draw — a C-speed permutation instead of ``len(pending)`` Python-level
    ``_randbelow`` calls, which otherwise dominates both engines equally.
    Without numpy every round falls back to ``rng.shuffle`` (same uniform
    distribution, different — but still deterministic — permutations).
    """
    if _np is None or len(pending) < _NUMPY_SHUFFLE_MIN:
        rng.shuffle(pending)
        return pending
    permutation = _permuter(rng).permutation(len(pending))
    if type(pending[0]) is int:  # flat engine: C-speed gather over int codes
        codes = _np.fromiter(pending, dtype=_np.intp, count=len(pending))
        pending[:] = codes[permutation].tolist()
    else:  # reference engine: tuple pairs
        pending[:] = [pending[index] for index in permutation.tolist()]
    return pending

#: Pair states (values of ``MatchingState._pair_state``).
_SATISFIED = 0
_NEEDED = 1
_MATCHABLE = 2


class MatchingState:
    """Mutable chunk-ownership state shared across matching rounds.

    The constructor signature is unchanged from the dict-based
    implementation: ``(num_npus, precondition, postcondition)`` with
    ownership maps from NPU index to a frozenset of chunk ids.
    """

    def __init__(
        self,
        num_npus: int,
        precondition: Dict[int, frozenset],
        postcondition: Dict[int, frozenset],
    ) -> None:
        self.num_npus = num_npus
        max_chunk = -1
        for chunks in precondition.values():
            for chunk in chunks:
                if chunk > max_chunk:
                    max_chunk = chunk
        for chunks in postcondition.values():
            for chunk in chunks:
                if chunk > max_chunk:
                    max_chunk = chunk
        #: Total number of distinct chunk ids (chunks are ``0 .. num_chunks - 1``).
        self.num_chunks = max_chunk + 1

        size = num_npus * self.num_chunks
        #: acquisition[npu * num_chunks + chunk] = time the chunk was (or will
        #: be) acquired; ``inf`` = never held nor scheduled.
        self._acquisition: List[float] = [inf] * size
        #: Per chunk, the NPUs holding or scheduled to receive it (ascending).
        self._holders: List[List[int]] = [[] for _ in range(self.num_chunks)]
        #: Acquisitions not yet applied to pair states: (time, npu, chunk).
        self._activations: List[Tuple[float, int, int]] = []
        num_chunks = self.num_chunks
        for npu in sorted(precondition):
            for chunk in sorted(precondition[npu]):
                if self._acquisition[npu * num_chunks + chunk] == inf:
                    self._holders[chunk].append(npu)
                    self._activations.append((0.0, npu, chunk))
                self._acquisition[npu * num_chunks + chunk] = 0.0
        self._activations.sort()

        #: One byte per (npu, chunk) pair: _SATISFIED / _NEEDED / _MATCHABLE.
        self._pair_state = bytearray(size)
        #: Unsatisfied pair codes in ascending (lexicographic) order; lazily
        #: compacted by :meth:`_pending_codes` as pairs are granted.
        self._pair_codes: List[int] = []
        for npu in range(num_npus):
            needed = postcondition.get(npu, frozenset()) - precondition.get(npu, frozenset())
            for chunk in sorted(needed):
                code = npu * num_chunks + chunk
                self._pair_state[code] = _NEEDED
                self._pair_codes.append(code)
        self._unsatisfied_count = len(self._pair_codes)
        #: numpy mirror of ``_pair_codes`` (compaction and permutation then
        #: run at C speed); ``None`` without numpy.
        self._codes_array = (
            _np.array(self._pair_codes, dtype=_np.intp) if _np is not None else None
        )
        #: numpy mirror of "acquisition has come due": ``_held[code]`` flips
        #: to True exactly when the pair's activation is popped in
        #: :meth:`activate_until`, i.e. when ``acquisition[code] <= time +
        #: eps`` for the round being activated.  Backs the matching round's
        #: vectorized candidate prefilter; ``None`` without numpy.
        self._held = _np.zeros(size, dtype=bool) if _np is not None else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def holds(self, npu: int, chunk: int, time: float) -> bool:
        """Whether ``npu`` holds ``chunk`` no later than ``time``."""
        return self._acquisition[npu * self.num_chunks + chunk] <= time + _TIME_EPS

    def acquisition_time(self, npu: int, chunk: int) -> Optional[float]:
        """Time at which ``npu`` holds (or is scheduled to receive) ``chunk``, if any."""
        acquired = self._acquisition[npu * self.num_chunks + chunk]
        return None if acquired == inf else acquired

    def will_hold(self, npu: int, chunk: int) -> bool:
        """Whether ``npu`` holds or is already scheduled to receive ``chunk``."""
        return self._acquisition[npu * self.num_chunks + chunk] != inf

    def is_needed(self, npu: int, chunk: int) -> bool:
        """Whether the postcondition (npu, chunk) is still unsatisfied."""
        return self._pair_state[npu * self.num_chunks + chunk] != _SATISFIED

    def holders(self, chunk: int) -> Sequence[int]:
        """NPUs holding or scheduled to receive ``chunk``, ascending (read-only)."""
        return self._holders[chunk]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def grant(self, npu: int, chunk: int, time: float) -> None:
        """Record that ``npu`` acquires ``chunk`` at ``time``."""
        index = npu * self.num_chunks + chunk
        existing = self._acquisition[index]
        if time < existing:
            if existing == inf:
                insort(self._holders[chunk], npu)
            self._acquisition[index] = time
            heappush(self._activations, (time, npu, chunk))
        if self._pair_state[index]:
            self._pair_state[index] = _SATISFIED
            self._unsatisfied_count -= 1

    def activate_until(self, time: float, out_adjacency: List[List[int]]) -> None:
        """Promote pairs whose adjacent holder's acquisition has come due.

        Pops every acquisition scheduled at or before ``time`` and marks the
        still-needed (out-neighbour, chunk) pairs of the new holder as
        matchable.  Called at the start of each matching round; promotions
        are permanent because chunks are never un-acquired.
        """
        activations = self._activations
        if not activations:
            return
        threshold = time + _TIME_EPS
        pair_state = self._pair_state
        num_chunks = self.num_chunks
        held = self._held
        while activations and activations[0][0] <= threshold:
            _, npu, chunk = heappop(activations)
            if held is not None:
                held[npu * num_chunks + chunk] = True
            for neighbour in out_adjacency[npu]:
                code = neighbour * num_chunks + chunk
                if pair_state[code] == _NEEDED:
                    pair_state[code] = _MATCHABLE

    def pending_pairs(self) -> List[Tuple[int, int]]:
        """The unsatisfied (dest, chunk) pairs in lexicographic order."""
        num_chunks = self.num_chunks
        return [divmod(code, num_chunks) for code in self._pending_codes()]

    def _pending_array(self):
        """Unsatisfied pair codes as a compacted ascending numpy array."""
        array = self._codes_array
        if len(array) != self._unsatisfied_count:
            states = _np.frombuffer(self._pair_state, dtype=_np.uint8)
            array = array[states[array] != _SATISFIED]
            self._codes_array = array
        return array

    def _pending_codes(self) -> List[int]:
        """Unsatisfied pair codes, ascending; compacts the internal store."""
        if self._codes_array is not None:
            return self._pending_array().tolist()
        pair_state = self._pair_state
        if len(self._pair_codes) != self._unsatisfied_count:
            self._pair_codes = [code for code in self._pair_codes if pair_state[code]]
        return list(self._pair_codes)

    # ------------------------------------------------------------------
    # Compatibility views
    # ------------------------------------------------------------------
    @property
    def unsatisfied(self) -> Set[Tuple[int, int]]:
        """The remaining (dest, chunk) postconditions as a set (materialized view)."""
        num_chunks = self.num_chunks
        pair_state = self._pair_state
        return {
            divmod(code, num_chunks) for code in self._pair_codes if pair_state[code]
        }

    @property
    def holdings(self) -> List[Dict[int, float]]:
        """Per-NPU ``{chunk: acquisition_time}`` snapshot (compatibility view)."""
        acquisition = self._acquisition
        num_chunks = self.num_chunks
        return [
            {
                chunk: acquisition[npu * num_chunks + chunk]
                for chunk in range(num_chunks)
                if acquisition[npu * num_chunks + chunk] != inf
            }
            for npu in range(self.num_npus)
        ]

    @property
    def done(self) -> bool:
        """Whether every postcondition has been satisfied or scheduled."""
        return self._unsatisfied_count == 0


class TrialBound:
    """Lower-bound evaluator on a trial's final ``collective_time``.

    Backs incumbent pruning (:class:`~repro.core.config.SynthesisConfig.
    incumbent_pruning`): between matching rounds the synthesizer asks for a
    bound on the best final time the trial can still reach, and aborts the
    trial when the bound strictly exceeds the best completed trial.  Any
    *valid* lower bound keeps that optimization exact (see
    docs/determinism.md, "Incumbent pruning is exact"); this one combines
    three cheap components, each valid on its own:

    1. **Committed work.** The final collective time is at least the end of
       the latest transfer committed so far (the caller tracks this running
       maximum and passes it in; it is monotone non-decreasing across rounds
       because link free-times only ever increase).

    2. **Per-destination in-link capacity.** Every still-unsatisfied
       (dest, chunk) pair needs one more transfer *into* ``dest`` that is not
       committed yet, and future rounds start strictly after the current
       span.  A destination owing ``u`` chunks over ``deg`` incoming links
       must route ``ceil(u / deg)`` of them over one link, sequentially, each
       occupying it for at least the destination's cheapest in-link cost —
       so the trial cannot finish before ``time + ceil(u / deg) * min_cost``
       for any destination.  On bandwidth-bound patterns (All-Gather on
       meshes) this term is tight from round one, which is what lets losing
       trials die early rather than at their own finish line.

    3. **Hop-distance chains and work conservation** (forwarding patterns).
       For a chunk with a *single* unsatisfied destination (personalized
       patterns: All-to-All, Gather, Scatter), any delivery chain leaves the
       committed schedule at some holder ``m`` and still needs
       ``hop_distances[m][dest]`` distinct uncommitted hops, each occupying
       a link for at least the global minimum cost and each starting after
       its predecessor — so the trial cannot finish before ``time +
       min_dist * min_cost`` for *every* such chunk (the straggler chain
       that dominates losing Gather/All-to-All trials, where the capacity
       term goes blind because only a handful of chunks remain owed).
       Summing the same per-chunk transfer counts instead and spreading
       them over the network's ``num_links`` links gives the complementary
       work-conservation form ``time + total_transfers * min_cost /
       num_links`` (chunks owing several destinations contribute one
       transfer per owed destination — each delivery lands the chunk on a
       distinct new node).  The per-chunk distances shrink only when a
       commit creates a closer holder, which :meth:`update` applies from
       each round's transfers.

    4. **Per-source out-link capacity.**  A still-owed chunk held by a
       *single* NPU must make its first uncommitted hop out of that NPU
       (every delivery chain starts at a committed holder).  A source still
       holding ``n`` such undeparted chunks over ``deg_out`` outgoing links
       must push ``ceil(n / deg_out)`` of them over one link sequentially —
       the mirror image of component 2, and the term that sees a Scatter
       root (or the scatter half of All-to-All) falling behind on draining
       long before the per-destination terms notice.  :meth:`update` marks
       a chunk departed on its first committed transfer.

    The capacity and distance components are computed over the flat engine's
    state arrays; for engines with other state layouts (the frozen reference
    engine) they degrade to the committed-work component alone — still
    exact, just later pruning.  Evaluation never consumes RNG and never
    mutates the TEN or the state.
    """

    __slots__ = (
        "_state",
        "_num_chunks",
        "_num_npus",
        "_degrees",
        "_min_in_cost",
        "_hop_rows",
        "_chunk_dest",
        "_chunk_dist",
        "_min_cost",
        "_per_link_cost",
        "_origin",
        "_departed",
        "_undeparted_at",
        "_out_degrees",
        "_min_out_cost",
        "_out_remaining",
        "_out_stale",
    )

    def __init__(
        self,
        ten: TimeExpandedNetwork,
        state: "MatchingState",
        hop_distances: Optional[List[List[int]]] = None,
    ) -> None:
        self._state: Optional[MatchingState] = None
        self._hop_rows: Optional[List[List[int]]] = None
        self._chunk_dest: Optional[List[int]] = None
        if _np is None or not isinstance(state, MatchingState):
            return
        csr_getter = getattr(ten, "in_link_csr", None)
        csr = csr_getter() if csr_getter is not None else None
        if csr is None:
            return
        in_flat, in_indptr, _sources = csr
        num_npus = state.num_npus
        num_chunks = state.num_chunks
        degrees = _np.diff(in_indptr)
        costs = _np.asarray(ten.link_costs, dtype=_np.float64)
        gathered = costs[in_flat]
        min_in_cost = _np.zeros(num_npus, dtype=_np.float64)
        if gathered.size:
            empty = degrees == 0
            starts = in_indptr[:-1].copy()
            starts[empty] = 0  # any in-range index; masked out below
            min_in_cost = _np.minimum.reduceat(gathered, starts)
            min_in_cost[empty] = 0.0
        self._state = state
        self._num_chunks = num_chunks
        self._num_npus = num_npus
        self._degrees = _np.maximum(degrees, 1)
        self._min_in_cost = min_in_cost
        self._min_cost = ten.min_link_cost
        self._per_link_cost = (
            ten.min_link_cost / len(ten.link_costs) if ten.link_costs else 0.0
        )

        # Out-capacity tracking: owed chunks whose full holder set is one NPU
        # must make their first hop out of it.  Count them per source.
        owed_chunks = {code % num_chunks for code in state._pair_codes}
        origin = [-1] * num_chunks
        undeparted_at = _np.zeros(num_npus, dtype=_np.intp)
        for chunk in sorted(owed_chunks):
            holders = state._holders[chunk]
            if len(holders) == 1:
                origin[chunk] = holders[0]
                undeparted_at[holders[0]] += 1
        sources = _np.asarray(ten.link_sources, dtype=_np.intp)
        out_degrees = _np.bincount(sources, minlength=num_npus)
        min_out_cost = _np.zeros(num_npus, dtype=_np.float64)
        if costs.size:
            min_out_cost = _np.full(num_npus, _np.inf)
            _np.minimum.at(min_out_cost, sources, costs)
            min_out_cost[out_degrees == 0] = 0.0
        self._origin = origin
        self._departed = [False] * num_chunks
        self._undeparted_at = undeparted_at
        self._out_degrees = _np.maximum(out_degrees, 1)
        self._min_out_cost = min_out_cost
        # Cached between rounds: departures are the only thing that changes
        # the out-capacity term, and most rounds drain only a few sources.
        self._out_remaining = 0.0
        self._out_stale = True

        if hop_distances is None:
            return
        # Distance tracking for single-destination chunks: dest per chunk
        # (-1 = untracked) and the current min hop distance over holders.
        owed_dest = [-1] * num_chunks
        for code in state._pair_codes:
            dest, chunk = divmod(code, num_chunks)
            owed_dest[chunk] = dest if owed_dest[chunk] == -1 else -2
        chunk_dist = _np.zeros(num_chunks, dtype=_np.float64)
        for chunk in range(num_chunks):
            dest = owed_dest[chunk]
            if dest < 0:
                owed_dest[chunk] = -1
                continue
            holders = state._holders[chunk]
            chunk_dist[chunk] = (
                min(hop_distances[holder][dest] for holder in holders) if holders else 0
            )
        self._hop_rows = hop_distances
        self._chunk_dest = owed_dest
        self._chunk_dist = chunk_dist

    def update(self, transfers) -> None:
        # repro-lint: disable-scope=C301,C302 -- one round's freshly committed
        # transfers arrive as a short row list from the matcher, never a
        # materialized TransferTable slice
        """Fold one round's committed transfers into the incremental tracking."""
        if self._state is None or not transfers:
            return
        chunk_dest = self._chunk_dest
        hop_rows = self._hop_rows
        chunk_dist = self._chunk_dist if chunk_dest is not None else None
        origin = self._origin
        departed = self._departed
        undeparted_at = self._undeparted_at
        for transfer in transfers:
            chunk = transfer.chunk
            if not departed[chunk]:
                departed[chunk] = True
                source = origin[chunk]
                if source >= 0:
                    undeparted_at[source] -= 1
                    self._out_stale = True
            if chunk_dest is None:
                continue
            dest = chunk_dest[chunk]
            if dest < 0:
                continue
            hops = hop_rows[transfer.dest][dest]
            if hops < chunk_dist[chunk]:
                chunk_dist[chunk] = hops

    def value(self, time: float, committed_end: float) -> float:
        """The bound after the round at ``time``; ``committed_end`` = max transfer end so far."""
        bound = committed_end if committed_end > time else time
        state = self._state
        if state is None:
            return bound
        codes = state._pending_array()
        if not len(codes):
            return bound
        owed = _np.bincount(codes // self._num_chunks, minlength=self._num_npus)
        spans = -(-owed // self._degrees)
        remaining = float((spans * self._min_in_cost).max())
        if remaining > 0.0:
            candidate = time + remaining
            if candidate > bound:
                bound = candidate
        if self._out_stale:
            out_spans = -(-self._undeparted_at // self._out_degrees)
            self._out_remaining = float((out_spans * self._min_out_cost).max())
            self._out_stale = False
        if self._out_remaining > 0.0:
            candidate = time + self._out_remaining
            if candidate > bound:
                bound = candidate
        if self._chunk_dest is not None and self._min_cost > 0.0:
            chunk_col = codes % self._num_chunks
            distances = _np.maximum(self._chunk_dist[chunk_col], 1.0)
            candidate = time + float(distances.max()) * self._min_cost
            if candidate > bound:
                bound = candidate
            candidate = time + float(distances.sum()) * self._per_link_cost
            if candidate > bound:
                bound = candidate
        return bound


def _pick_link_id(
    candidates: List[int],
    link_costs: List[float],
    rng: random.Random,
    prefer_lowest_cost: bool,
) -> int:
    """Randomly select one candidate link id, optionally restricted to the cheapest.

    Mirrors the reference engine's ``_pick_link`` exactly, including its RNG
    consumption: one uniform draw per choice among two or more links
    (``randrange(n)`` and ``choice`` consume the identical single
    ``_randbelow(n)`` draw), no draw when a single link remains (part of the
    determinism contract).
    """
    if prefer_lowest_cost and len(candidates) > 1:
        best = min(link_costs[link_id] for link_id in candidates)
        threshold = best + _TIME_EPS
        cheapest = [link_id for link_id in candidates if link_costs[link_id] <= threshold]
        if len(cheapest) == 1:
            return cheapest[0]
        return cheapest[rng.randrange(len(cheapest))]
    if len(candidates) == 1:
        return candidates[0]
    return candidates[rng.randrange(len(candidates))]


#: Pairs per candidate-prefilter block in :func:`_run_direct_pass_blockwise`.
#: Purely a performance knob: the block boundaries never change the
#: algorithm's output, only how often the exact prefilter re-runs.
_PREFILTER_BLOCK = 512


def _run_direct_pass_blockwise(
    ten: TimeExpandedNetwork,
    state: MatchingState,
    time: float,
    rng: random.Random,
    transfers: List[ChunkTransfer],
    idle_total: int,
    *,
    prefer_lowest_cost: bool,
    cheap_regions: Optional[Dict[float, List[frozenset]]],
) -> None:
    """Vectorized-prefilter variant of the direct pass (large rounds, no forwarding).

    Byte-identical to the scalar pass-1 loop in :func:`run_matching_round`.
    The permuted pending pairs are processed in blocks of
    :data:`_PREFILTER_BLOCK`; before each block one vectorized sweep over the
    incoming-link CSR drops every pair whose candidate set is empty *right
    now*, and extracts the surviving pairs' candidate lists, so the Python
    loop only touches pairs that plausibly match.

    Exactness argument (the determinism contract depends on it): within a
    pass-1 round, links only become busy (``free_times`` never decreases)
    and — because the caller guards ``time + min_link_cost > threshold`` —
    no transfer committed this round comes due within it, so the holder set
    visible to candidate checks (``acquisition <= threshold``, mirrored by
    ``MatchingState._held``) is frozen for the whole round.  Both prefilter
    conditions are therefore monotone: a candidate invalid at block-filter
    time stays invalid, so per-pair candidate lists built at filter time,
    re-checked against live ``free_times``, equal the scalar loop's lists
    element-for-element (both follow in-neighbour order).  Pairs dropped by
    the prefilter are exactly those the scalar loop would pass over without
    consuming the RNG, and a saturated span (``idle_total == 0``) stops both
    loops before any further draw, so the RNG streams coincide.
    """
    num_chunks = state.num_chunks
    acquisition = state._acquisition
    pair_state = state._pair_state
    holders = state._holders
    activations = state._activations
    held = state._held
    link_costs = ten.link_costs
    link_sources = ten.link_sources
    free_times = ten.free_times
    event_heap = ten._event_heap
    event_times = ten._event_times
    threshold = time + _TIME_EPS
    uniform_cost = ten.uniform_cost
    tuple_new = tuple.__new__
    transfer_cls = ChunkTransfer
    rand_range = rng.randrange

    codes = state._pending_array()
    permutation = _permuter(rng).permutation(len(codes))
    if idle_total == 0:
        # Saturated span: the scalar loop would break before drawing
        # anything, so only the permutation consumes the RNG.
        return
    codes = codes[permutation]
    kept = codes[_np.frombuffer(pair_state, dtype=_np.uint8)[codes] == _MATCHABLE]
    total_kept = len(kept)
    if not total_kept:
        return
    in_flat, in_indptr, sources_arr = ten.in_link_csr()
    num_links = len(free_times)

    cursor = 0
    while cursor < total_kept and idle_total > 0:
        block = kept[cursor : cursor + _PREFILTER_BLOCK]
        cursor += _PREFILTER_BLOCK
        # One sweep over the block's incoming-link edges: a candidate is
        # valid when its link is idle now and its source already holds the
        # chunk (held is frozen for the round, see docstring).
        dest_col = block // num_chunks
        chunk_col = block - dest_col * num_chunks
        starts = in_indptr[dest_col]
        degrees = in_indptr[dest_col + 1] - starts
        indptr = _np.empty(len(block) + 1, dtype=_np.intp)
        indptr[0] = 0
        _np.cumsum(degrees, out=indptr[1:])
        num_edges = int(indptr[-1])
        edges = in_flat[_np.repeat(starts - indptr[:-1], degrees) + _np.arange(num_edges)]
        free_np = _np.fromiter(free_times, dtype=_np.float64, count=num_links)
        valid = (free_np[edges] <= threshold) & held[
            sources_arr[edges] * num_chunks + _np.repeat(chunk_col, degrees)
        ]
        running = _np.empty(num_edges + 1, dtype=_np.intp)
        running[0] = 0
        _np.cumsum(valid, out=running[1:])
        counts = running[indptr[1:]] - running[indptr[:-1]]
        keep = counts > 0
        if not keep.any():
            continue
        codes_list = block[keep].tolist()
        dest_list = dest_col[keep].tolist()
        chunk_list = chunk_col[keep].tolist()
        counts_list = counts[keep].tolist()
        cand_flat = edges[valid].tolist()
        base = 0
        for index in range(len(codes_list)):
            span = counts_list[index]
            low = base
            base += span
            if idle_total == 0:
                return  # span saturated: no remaining pair can match
            code = codes_list[index]
            if pair_state[code] == _SATISFIED:
                continue
            candidates = [
                link_id
                for link_id in cand_flat[low : low + span]
                if free_times[link_id] <= threshold
            ]
            if not candidates:
                continue
            dest = dest_list[index]
            chunk = chunk_list[index]
            if prefer_lowest_cost and cheap_regions is not None:
                # Lower-cost-link prioritization (Sec. IV-F), identical to
                # the scalar loop's deferral.
                best_available = min(link_costs[link_id] for link_id in candidates)
                region_by_dest = cheap_regions.get(best_available)
                if region_by_dest is not None:
                    region = region_by_dest[dest]
                    if any(holder in region for holder in holders[chunk]):
                        continue
            num_candidates = len(candidates)
            if num_candidates == 1:
                link_id = candidates[0]
            elif uniform_cost or not prefer_lowest_cost:
                link_id = candidates[rand_range(num_candidates)]
            else:
                link_id = _pick_link_id(candidates, link_costs, rng, prefer_lowest_cost)
            # Inlined commit, same as the scalar loop.
            end = time + link_costs[link_id]
            free_times[link_id] = end
            if end not in event_times:
                event_times.add(end)
                heappush(event_heap, end)
            idle_total -= 1
            source = link_sources[link_id]
            insort(holders[chunk], dest)
            acquisition[code] = end
            heappush(activations, (end, dest, chunk))
            pair_state[code] = _SATISFIED
            state._unsatisfied_count -= 1
            transfers.append(tuple_new(transfer_cls, (time, end, chunk, source, dest)))


def run_matching_round(
    ten: TimeExpandedNetwork,
    state: MatchingState,
    time: float,
    rng: random.Random,
    *,
    prefer_lowest_cost: bool = True,
    enable_forwarding: bool = True,
    hop_distances: Optional[List[List[int]]] = None,
    cheap_regions: Optional[Dict[float, List[frozenset]]] = None,
) -> List[ChunkTransfer]:
    """Run Alg. 1 for one time span; return the link-chunk matches created.

    Parameters
    ----------
    ten:
        The time-expanded network state (mutated: matched links are occupied).
    state:
        Chunk ownership state (mutated: destinations are granted chunks at
        their arrival times).
    time:
        The current time span ``t``.
    rng:
        Random source driving the shuffles and tie-breaking choices.
    prefer_lowest_cost:
        Restrict random link choice to the cheapest candidates (Sec. IV-F).
    enable_forwarding:
        Run the forwarding pass for postconditions that could not be matched
        directly (needed only for rooted/personalized collectives).
    hop_distances:
        ``hop_distances[a][b]`` = hop distance from ``a`` to ``b``; required
        when ``enable_forwarding`` is True (used to push chunks strictly
        closer to their destination and guarantee progress).
    cheap_regions:
        For heterogeneous topologies: ``cheap_regions[cost][dest]`` is the set
        of NPUs that can reach ``dest`` using only links strictly cheaper than
        ``cost``.  Used by the lower-cost-link prioritization to avoid
        redundant transfers over scarce expensive links; ``None`` disables the
        deferral (homogeneous topologies need none).
    """
    transfers: List[ChunkTransfer] = []
    num_chunks = state.num_chunks
    num_npus = state.num_npus
    acquisition = state._acquisition
    pair_state = state._pair_state
    holders = state._holders
    activations = state._activations
    link_costs = ten.link_costs
    link_sources = ten.link_sources
    link_dests = ten.link_dests
    free_times = ten.free_times
    event_heap = ten._event_heap
    event_times = ten._event_times
    threshold = time + _TIME_EPS

    state.activate_until(time, ten.out_adjacency)

    # Links only become busy during a round (occupy is the sole mutation), so
    # per-NPU idle-link lists can be cached for the span and invalidated on
    # occupy, and the scan can stop once every link of the span is taken.
    idle_total = ten.idle_link_count(time)
    idle_in_cache: List[Optional[List[int]]] = [None] * num_npus
    idle_out_cache: List[Optional[List[int]]] = [None] * num_npus

    # The deferred pairs only matter when a forwarding pass will consume them.
    collect_deferred = enable_forwarding and hop_distances is not None
    # On uniform-cost (homogeneous) spans the lowest-cost restriction keeps
    # every candidate, so the min/filter step reduces to a plain rng.choice
    # over the same list — identical RNG consumption, no scan.
    uniform_cost = ten.uniform_cost
    tuple_new = tuple.__new__
    transfer_cls = ChunkTransfer
    rand_range = rng.randrange

    # ------------------------------------------------------------------
    # Pass 1 — Alg. 1: direct matches onto destinations that request a chunk.
    # ------------------------------------------------------------------
    if (
        _np is not None
        and not collect_deferred
        and state._unsatisfied_count >= _NUMPY_SHUFFLE_MIN
        and time + ten.min_link_cost > threshold
    ):
        # Forwarding is off, so deferred pairs are never consumed: run the
        # pass over block-prefiltered candidate lists instead of the scalar
        # scan.  The min_link_cost guard proves no commit made this round
        # comes due within it, which is what makes the prefilter exact (see
        # _run_direct_pass_blockwise); without it — sub-epsilon link costs —
        # fall through to the scalar loop, which consumes the RNG
        # identically via shuffle_pairs.
        _run_direct_pass_blockwise(
            ten,
            state,
            time,
            rng,
            transfers,
            idle_total,
            prefer_lowest_cost=prefer_lowest_cost,
            cheap_regions=cheap_regions,
        )
        return transfers
    pending = shuffle_pairs(state._pending_codes(), rng)
    deferred: List[int] = []
    for position, code in enumerate(pending):
        pair = pair_state[code]
        if pair == _SATISFIED:
            continue  # satisfied earlier in this round
        if idle_total == 0:
            # The span is saturated: every remaining open pair has no idle
            # link and therefore no candidates — defer them all unscanned.
            if collect_deferred:
                deferred.extend(
                    later for later in pending[position:] if pair_state[later]
                )
            break
        if pair == _NEEDED:
            # No in-neighbour of the destination holds this chunk yet, so the
            # candidate set is provably empty (one byte probe, no link scan).
            if collect_deferred:
                deferred.append(code)
            continue
        dest, chunk = divmod(code, num_chunks)
        idle_links = idle_in_cache[dest]
        if idle_links is None:
            idle_links = [
                link_id
                for link_id in ten.in_link_ids(dest)
                if free_times[link_id] <= threshold
            ]
            idle_in_cache[dest] = idle_links
        candidates = [
            link_id
            for link_id in idle_links
            if acquisition[link_sources[link_id] * num_chunks + chunk] <= threshold
        ]
        if not candidates:
            if collect_deferred:
                deferred.append(code)
            continue
        if prefer_lowest_cost and cheap_regions is not None:
            # Lower-cost-link prioritization (Sec. IV-F): a strictly cheaper
            # incoming link will be able to supply this chunk soon (its source
            # is already scheduled to receive it), so do not burn an expensive
            # link on it now.  On homogeneous topologies this never triggers.
            best_available = min(link_costs[link_id] for link_id in candidates)
            region_by_dest = cheap_regions.get(best_available)
            if region_by_dest is not None:
                region = region_by_dest[dest]
                if any(holder in region for holder in holders[chunk]):
                    continue
        num_candidates = len(candidates)
        if num_candidates == 1:
            link_id = candidates[0]
        elif uniform_cost or not prefer_lowest_cost:
            link_id = candidates[rand_range(num_candidates)]
        else:
            link_id = _pick_link_id(candidates, link_costs, rng, prefer_lowest_cost)
        # Inlined commit (occupy + event push + grant): one transfer is the
        # innermost unit of work, so the method-call overhead matters here.
        end = time + link_costs[link_id]
        free_times[link_id] = end
        if end not in event_times:
            event_times.add(end)
            heappush(event_heap, end)
        idle_total -= 1
        source = link_sources[link_id]
        idle_in_cache[dest] = None
        idle_out_cache[source] = None
        insort(holders[chunk], dest)
        acquisition[code] = end
        heappush(activations, (end, dest, chunk))
        pair_state[code] = _SATISFIED
        state._unsatisfied_count -= 1
        transfers.append(tuple_new(transfer_cls, (time, end, chunk, source, dest)))

    # ------------------------------------------------------------------
    # Pass 2 — forwarding: push still-unserved chunks one hop closer.
    # ------------------------------------------------------------------
    if deferred:
        shuffle_pairs(deferred, rng)
        for code in deferred:
            if pair_state[code] == _SATISFIED:
                continue
            if idle_total == 0:
                break  # no idle link anywhere: no forwarding candidate exists
            dest, chunk = divmod(code, num_chunks)
            candidates = []
            for holder in holders[chunk]:
                if acquisition[holder * num_chunks + chunk] > threshold:
                    continue  # scheduled for the future, not held yet
                idle_links = idle_out_cache[holder]
                if idle_links is None:
                    idle_links = [
                        link_id
                        for link_id in ten.out_link_ids(holder)
                        if free_times[link_id] <= threshold
                    ]
                    idle_out_cache[holder] = idle_links
                holder_distance = hop_distances[holder][dest]
                for link_id in idle_links:
                    neighbour = link_dests[link_id]
                    if acquisition[neighbour * num_chunks + chunk] != inf:
                        continue  # already holds or scheduled to receive it
                    if hop_distances[neighbour][dest] < holder_distance:
                        candidates.append(link_id)
            if not candidates:
                continue
            num_candidates = len(candidates)
            if num_candidates == 1:
                link_id = candidates[0]
            elif uniform_cost or not prefer_lowest_cost:
                link_id = candidates[rand_range(num_candidates)]
            else:
                link_id = _pick_link_id(candidates, link_costs, rng, prefer_lowest_cost)
            end = time + link_costs[link_id]
            free_times[link_id] = end
            if end not in event_times:
                event_times.add(end)
                heappush(event_heap, end)
            idle_total -= 1
            source = link_sources[link_id]
            neighbour = link_dests[link_id]
            idle_in_cache[neighbour] = None
            idle_out_cache[source] = None
            # Inlined grant: the neighbour was checked to not hold the chunk.
            insort(holders[chunk], neighbour)
            neighbour_code = neighbour * num_chunks + chunk
            acquisition[neighbour_code] = end
            heappush(activations, (end, neighbour, chunk))
            if pair_state[neighbour_code]:
                pair_state[neighbour_code] = _SATISFIED
                state._unsatisfied_count -= 1
            transfers.append(tuple_new(transfer_cls, (time, end, chunk, source, neighbour)))

    return transfers
