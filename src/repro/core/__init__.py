"""TACOS core: synthesizer, matching algorithm, and algorithm representation."""

from repro.core.algorithm import ChunkTransfer, CollectiveAlgorithm
from repro.core.config import SynthesisConfig
from repro.core.matching import MatchingState, run_matching_round
from repro.core.synthesizer import (
    FLAT_ENGINE,
    SynthesisEngine,
    SynthesisResult,
    TacosSynthesizer,
    synthesize,
)
from repro.core.transfers import TransferTable
from repro.core.verification import verify_algorithm

__all__ = [
    "ChunkTransfer",
    "CollectiveAlgorithm",
    "FLAT_ENGINE",
    "MatchingState",
    "SynthesisConfig",
    "SynthesisEngine",
    "SynthesisResult",
    "TacosSynthesizer",
    "TransferTable",
    "run_matching_round",
    "synthesize",
    "verify_algorithm",
]
