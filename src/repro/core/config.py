"""Synthesis configuration for the TACOS synthesizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SynthesisError

__all__ = ["SynthesisConfig"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs controlling the randomized TACOS search.

    Attributes
    ----------
    seed:
        Base random seed.  Trial ``i`` uses ``seed + i`` so results are
        reproducible while still exploring different random matchings.
    trials:
        Number of independent randomized synthesis runs; the algorithm with
        the smallest collective time is kept (the artifact's randomized
        search behaves the same way).
    prefer_lowest_cost_links:
        When several candidate links can serve a match, restrict the random
        choice to the lowest-cost ones (Sec. IV-F, "Prioritizing Lower-cost
        Links").  Only matters on heterogeneous topologies.
    enable_forwarding:
        Allow the matching round to additionally push a chunk one hop closer
        to a destination that cannot yet be served directly.  This is a
        superset of Alg. 1 needed for rooted/personalized collectives
        (Gather, Scatter, All-to-All) where intermediate NPUs never request
        the chunk themselves; it never fires for the paper's All-Gather /
        Broadcast style patterns when a direct match exists.
    max_rounds:
        Safety bound on the number of time spans; exceeded only if synthesis
        cannot make progress (e.g. disconnected topology).
    trial_workers:
        Thread-pool size for dispatching independent randomized trials
        (through the same pool helper as :func:`repro.api.runner.run_batch`).
        ``None`` (the default) or 1 runs trials serially.  Note: the
        pure-Python matching kernel holds the GIL, so today this does not
        reduce wall-clock time — the seam exists so engines whose kernels
        release the GIL can parallelize without API changes.  Either way the
        selected algorithm is identical because the best-of-trials choice is
        order-independent.
    """

    seed: int = 0
    trials: int = 1
    prefer_lowest_cost_links: bool = True
    enable_forwarding: bool = True
    max_rounds: int = 1_000_000
    trial_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SynthesisError(f"trials must be at least 1, got {self.trials}")
        if self.max_rounds < 1:
            raise SynthesisError(f"max_rounds must be at least 1, got {self.max_rounds}")
        if self.trial_workers is not None and self.trial_workers < 1:
            raise SynthesisError(
                f"trial_workers must be at least 1 (or None), got {self.trial_workers}"
            )

    def trial_seed(self, trial: int) -> int:
        """Seed used for the ``trial``-th randomized synthesis run."""
        if not 0 <= trial < self.trials:
            raise SynthesisError(f"trial {trial} out of range for {self.trials} trials")
        return self.seed + trial
