"""Synthesis configuration for the TACOS synthesizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SynthesisError

__all__ = ["SynthesisConfig"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs controlling the randomized TACOS search.

    Attributes
    ----------
    seed:
        Base random seed.  Trial ``i`` uses ``seed + i`` so results are
        reproducible while still exploring different random matchings.
    trials:
        Number of independent randomized synthesis runs; the algorithm with
        the smallest collective time is kept (the artifact's randomized
        search behaves the same way).
    prefer_lowest_cost_links:
        When several candidate links can serve a match, restrict the random
        choice to the lowest-cost ones (Sec. IV-F, "Prioritizing Lower-cost
        Links").  Only matters on heterogeneous topologies.
    enable_forwarding:
        Allow the matching round to additionally push a chunk one hop closer
        to a destination that cannot yet be served directly.  This is a
        superset of Alg. 1 needed for rooted/personalized collectives
        (Gather, Scatter, All-to-All) where intermediate NPUs never request
        the chunk themselves; it never fires for the paper's All-Gather /
        Broadcast style patterns when a direct match exists.
    max_rounds:
        Safety bound on the number of time spans; exceeded only if synthesis
        cannot make progress (e.g. disconnected topology).
    """

    seed: int = 0
    trials: int = 1
    prefer_lowest_cost_links: bool = True
    enable_forwarding: bool = True
    max_rounds: int = 1_000_000

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SynthesisError(f"trials must be at least 1, got {self.trials}")
        if self.max_rounds < 1:
            raise SynthesisError(f"max_rounds must be at least 1, got {self.max_rounds}")

    def trial_seed(self, trial: int) -> int:
        """Seed used for the ``trial``-th randomized synthesis run."""
        if not 0 <= trial < self.trials:
            raise SynthesisError(f"trial {trial} out of range for {self.trials} trials")
        return self.seed + trial
