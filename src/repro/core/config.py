"""Synthesis configuration for the TACOS synthesizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SynthesisError

__all__ = ["SynthesisConfig"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs controlling the randomized TACOS search.

    Attributes
    ----------
    seed:
        Base random seed.  Trial ``i`` uses ``seed + i`` so results are
        reproducible while still exploring different random matchings.
    trials:
        Number of independent randomized synthesis runs; the algorithm with
        the smallest collective time is kept (the artifact's randomized
        search behaves the same way).
    prefer_lowest_cost_links:
        When several candidate links can serve a match, restrict the random
        choice to the lowest-cost ones (Sec. IV-F, "Prioritizing Lower-cost
        Links").  Only matters on heterogeneous topologies.
    enable_forwarding:
        Allow the matching round to additionally push a chunk one hop closer
        to a destination that cannot yet be served directly.  This is a
        superset of Alg. 1 needed for rooted/personalized collectives
        (Gather, Scatter, All-to-All) where intermediate NPUs never request
        the chunk themselves; it never fires for the paper's All-Gather /
        Broadcast style patterns when a direct match exists.
    max_rounds:
        Safety bound on the number of time spans; exceeded only if synthesis
        cannot make progress (e.g. disconnected topology).
    trial_workers:
        Pool size for dispatching independent randomized trials through the
        shared execution backends (:mod:`repro.api.parallel`).  ``None`` (the
        default) defers to the ambient
        :func:`~repro.api.parallel.execution_scope` policy — serial when none
        is installed; 1 forces serial.  With the default ``execution`` the
        pool is a thread pool (the historical behaviour — note the
        pure-Python matching kernel holds the GIL, so threads add no wall
        clock); set ``execution="process"`` for real multi-core parallelism.
        Either way the selected algorithm is byte-identical because every
        trial is seeded deterministically and the best-of-trials choice is
        order-independent.
    execution:
        Execution backend for the trial fan-out: ``"serial"``, ``"thread"``,
        ``"process"``, ``"pool"`` (a persistent process pool kept warm across
        fan-outs), or ``None`` (the default) to follow ``trial_workers``
        semantics / the ambient scope.
    incumbent_pruning:
        Abort a trial the moment a lower bound on its final collective time
        *strictly* exceeds the best completed trial so far (the incumbent).
        Exact: a pruned trial provably cannot win, and ties still resolve by
        seed index, so the selected winner is byte-identical with pruning on
        or off (see docs/determinism.md, "Incumbent pruning is exact").
        Parallel backends share the incumbent across seed waves.
    collect_trial_stats:
        Record per-trial statistics (seed, rounds, collective time,
        pruned-at-round, wall seconds) on the returned
        :class:`~repro.core.synthesizer.SynthesisResult`.  Implied by
        ``incumbent_pruning`` (the guided tier and the search bench consume
        the bookkeeping either way).
    wave_size:
        Seeds per pruning wave on parallel backends: the incumbent bound is
        re-shared between consecutive waves.  ``None`` (the default) sizes
        waves at twice the worker count.  Smaller waves prune harder but
        synchronize more often; the winner is identical for any value.
    floor_termination:
        Stop the whole search the moment a completed trial meets the
        round-0 lower bound (the "floor": the :class:`~repro.core.matching.
        TrialBound` value before any transfer is committed, which bounds
        *every* trial's final collective time from below).  No remaining
        trial can be strictly better than an incumbent at the floor, and
        the strict-``<`` best-of selection never replaces the incumbent on
        a tie, so skipping the rest is exact (see docs/determinism.md,
        "Incumbent pruning is exact").  On bandwidth-optimal schedules
        (All-Gather on meshes and rings, where every trial lands exactly on
        the floor) this collapses an N-trial search to a single trial.
        Requires ``incumbent_pruning``.
    """

    seed: int = 0
    trials: int = 1
    prefer_lowest_cost_links: bool = True
    enable_forwarding: bool = True
    max_rounds: int = 1_000_000
    trial_workers: Optional[int] = None
    execution: Optional[str] = None
    incumbent_pruning: bool = False
    collect_trial_stats: bool = False
    wave_size: Optional[int] = None
    floor_termination: bool = False

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SynthesisError(f"trials must be at least 1, got {self.trials}")
        if self.max_rounds < 1:
            raise SynthesisError(f"max_rounds must be at least 1, got {self.max_rounds}")
        if self.floor_termination and not self.incumbent_pruning:
            raise SynthesisError(
                "floor_termination requires incumbent_pruning (the floor is "
                "the pruning bound evaluated before any transfer commits)"
            )
        if self.wave_size is not None and self.wave_size < 1:
            raise SynthesisError(
                f"wave_size must be at least 1 (or None), got {self.wave_size}"
            )
        if self.trial_workers is not None and self.trial_workers < 1:
            raise SynthesisError(
                f"trial_workers must be at least 1 (or None), got {self.trial_workers}"
            )
        if self.execution is not None and self.execution not in (
            "serial",
            "thread",
            "process",
            "pool",
        ):
            raise SynthesisError(
                "execution must be serial, thread, process, or pool (or None), "
                f"got {self.execution!r}"
            )

    def trial_seed(self, trial: int) -> int:
        """Seed used for the ``trial``-th randomized synthesis run."""
        if not 0 <= trial < self.trials:
            raise SynthesisError(f"trial {trial} out of range for {self.trials} trials")
        return self.seed + trial
