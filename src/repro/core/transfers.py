"""Columnar transfer IR: the struct-of-arrays interchange format of the pipeline.

A :class:`TransferTable` holds every link-chunk match of a collective
algorithm as five parallel numpy columns (``starts``, ``ends``, ``chunks``,
``sources``, ``dests``) instead of a list of per-transfer Python objects.
It is the single in-memory representation every layer of the pipeline
consumes:

* the synthesizer composes phases (``shifted`` / ``reversed_in_time`` /
  ``concatenated``) as column arithmetic;
* :mod:`repro.core.verification` runs its causality / overlap /
  postcondition / reduction checks as vectorized sweeps over the columns;
* :mod:`repro.simulator.adapters` derives the simulator's dependency CSR
  with vectorized grouping and feeds the engine's flat hop columns directly;
* the exporters (:mod:`repro.export.algorithm_json`,
  :mod:`repro.export.msccl_xml`) and the analysis metrics read the columns
  without materializing tuples.

The tuple view (:class:`~repro.core.algorithm.ChunkTransfer` lists) remains
available through :meth:`to_transfers` for API compatibility; it is built
lazily and only when a caller actually asks for objects.

Tables are immutable by convention: every transformation returns a new
table, integer/float columns are shared between derived tables, and the
cached groupings (:meth:`by_link`, :meth:`by_dest_chunk`,
:meth:`lexsorted_order`) are computed at most once per table.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TransferTable", "grouped_order"]

_EMPTY_FLOAT = np.zeros(0, dtype=np.float64)
_EMPTY_INT = np.zeros(0, dtype=np.int64)

#: Magic prefix + version byte of the :meth:`TransferTable.to_bytes` format.
_BYTES_MAGIC = b"TACOSTT1"
#: Bytes per row: five 8-byte little-endian columns.
_BYTES_PER_ROW = 40


def grouped_order(
    codes: np.ndarray, secondary: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of ``codes``: ``(order, indptr, unique_codes)``.

    ``order`` sorts the rows by ``codes`` (then by ``secondary`` within a
    group when given), keeping the original order for full ties — the
    columnar equivalent of building a dict of lists and sorting each.
    ``indptr`` delimits the groups in ``order`` CSR-style, and
    ``unique_codes[g]`` is the code of group ``g``.
    """
    count = codes.shape[0]
    if count == 0:
        return _EMPTY_INT, np.zeros(1, dtype=np.int64), codes[:0]
    if secondary is None:
        order = np.argsort(codes, kind="stable")
    else:
        order = np.lexsort((secondary, codes))
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    indptr = np.concatenate((np.zeros(1, dtype=np.int64), boundaries, np.asarray([count], dtype=np.int64)))
    return order, indptr, sorted_codes[indptr[:-1]]


class TransferTable:
    """Struct-of-arrays view of a set of timed link-chunk matches.

    Attributes
    ----------
    starts, ends:
        ``float64`` transmission windows in seconds.
    chunks, sources, dests:
        ``int64`` chunk ids and endpoint NPUs.
    """

    __slots__ = ("starts", "ends", "chunks", "sources", "dests", "_cache")

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        chunks: np.ndarray,
        sources: np.ndarray,
        dests: np.ndarray,
        *,
        validate: bool = False,
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.chunks = chunks
        self.sources = sources
        self.dests = dests
        self._cache: Dict[str, object] = {}
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        starts: Sequence[float],
        ends: Sequence[float],
        chunks: Sequence[int],
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        validate: bool = True,
    ) -> "TransferTable":
        """Build a table from five parallel columns (the fast path).

        ``validate=True`` checks column lengths agree and no transfer ends
        before it starts, raising :class:`ValueError` like the
        :class:`~repro.core.algorithm.ChunkTransfer` constructor would.
        """
        return cls(
            np.asarray(starts, dtype=np.float64),
            np.asarray(ends, dtype=np.float64),
            np.asarray(chunks, dtype=np.int64),
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
            validate=validate,
        )

    @classmethod
    def from_transfers(cls, transfers: Iterable[Tuple[float, float, int, int, int]]) -> "TransferTable":
        """Build a table from ``(start, end, chunk, source, dest)`` tuples.

        The tuples are assumed already validated (they are
        :class:`~repro.core.algorithm.ChunkTransfer` instances on every
        internal path).
        """
        transfers = transfers if isinstance(transfers, (list, tuple)) else list(transfers)
        count = len(transfers)
        if count == 0:
            return cls.empty()
        starts, ends, chunks, sources, dests = zip(*transfers)
        return cls(
            np.fromiter(starts, dtype=np.float64, count=count),
            np.fromiter(ends, dtype=np.float64, count=count),
            np.fromiter(chunks, dtype=np.int64, count=count),
            np.fromiter(sources, dtype=np.int64, count=count),
            np.fromiter(dests, dtype=np.int64, count=count),
        )

    @classmethod
    def empty(cls) -> "TransferTable":
        return cls(_EMPTY_FLOAT, _EMPTY_FLOAT, _EMPTY_INT, _EMPTY_INT, _EMPTY_INT)

    # ------------------------------------------------------------------
    # Binary round-trip (the cheap cross-process transport)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact binary encoding: a header plus the five raw columns.

        The format is a fixed 16-byte header (magic + row count) followed by
        the ``starts``/``ends``/``chunks``/``sources``/``dests`` columns as
        little-endian 8-byte values.  It is the transport used to move tables
        across process boundaries (the process execution backend) and into
        the artifact store without pickling per-transfer objects; the float
        payload is bit-exact, so a round-trip preserves outputs byte for byte.
        """
        count = len(self)
        parts = [_BYTES_MAGIC, struct.pack("<Q", count)]
        parts.append(np.ascontiguousarray(self.starts, dtype="<f8").tobytes())
        parts.append(np.ascontiguousarray(self.ends, dtype="<f8").tobytes())
        parts.append(np.ascontiguousarray(self.chunks, dtype="<i8").tobytes())
        parts.append(np.ascontiguousarray(self.sources, dtype="<i8").tobytes())
        parts.append(np.ascontiguousarray(self.dests, dtype="<i8").tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TransferTable":
        """Decode :meth:`to_bytes` output, validating structure and invariants.

        Raises :class:`ValueError` on a bad magic, a truncated or oversized
        payload, or columns violating the table invariant (a transfer ending
        before it starts) — a corrupt or foreign buffer never produces a
        silently wrong table.
        """
        data = bytes(data)
        header = len(_BYTES_MAGIC) + 8
        if len(data) < header or data[: len(_BYTES_MAGIC)] != _BYTES_MAGIC:
            raise ValueError("not a TransferTable byte payload (bad magic)")
        (count,) = struct.unpack_from("<Q", data, len(_BYTES_MAGIC))
        expected = header + count * _BYTES_PER_ROW
        if len(data) != expected:
            raise ValueError(
                f"TransferTable byte payload declares {count} rows "
                f"({expected} bytes) but carries {len(data)} bytes"
            )

        def column(index: int, dtype: str, native: type) -> np.ndarray:
            offset = header + index * count * 8
            raw = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            return raw.astype(native, copy=True)

        table = cls(
            column(0, "<f8", np.float64),
            column(1, "<f8", np.float64),
            column(2, "<i8", np.int64),
            column(3, "<i8", np.int64),
            column(4, "<i8", np.int64),
        )
        table._validate()
        return table

    def _validate(self) -> None:
        count = self.starts.shape[0]
        for column in (self.ends, self.chunks, self.sources, self.dests):
            if column.shape[0] != count:
                raise ValueError(
                    f"transfer columns disagree in length: {count} vs {column.shape[0]}"
                )
        bad = self.ends < self.starts
        if bad.any():
            index = int(np.flatnonzero(bad)[0])
            raise ValueError(f"transfer ends before it starts: {self.transfer_at(index)}")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.starts.shape[0])

    def to_transfers(self) -> list:
        """Materialize the :class:`ChunkTransfer` object view (API compat)."""
        from repro.core.algorithm import ChunkTransfer

        return list(
            map(  # repro-lint: disable=C303 -- this IS the documented compat view; callers opt out of the columnar hot path on purpose
                ChunkTransfer._make,
                zip(
                    self.starts.tolist(),
                    self.ends.tolist(),
                    self.chunks.tolist(),
                    self.sources.tolist(),
                    self.dests.tolist(),
                ),
            )
        )

    def transfer_at(self, index: int):
        """One row as a :class:`ChunkTransfer` (used for error messages)."""
        from repro.core.algorithm import ChunkTransfer

        return ChunkTransfer._make(
            (
                float(self.starts[index]),
                float(self.ends[index]),
                int(self.chunks[index]),
                int(self.sources[index]),
                int(self.dests[index]),
            )
        )

    # ------------------------------------------------------------------
    # Scalar reductions
    # ------------------------------------------------------------------
    @property
    def max_end(self) -> float:
        """Completion time of the last transfer; 0 for empty tables."""
        if not len(self):
            return 0.0
        return float(self.ends.max())

    @property
    def min_start(self) -> float:
        """Start time of the earliest transfer; 0 for empty tables."""
        if not len(self):
            return 0.0
        return float(self.starts.min())

    @property
    def num_chunks(self) -> int:
        """``max(chunk) + 1`` — the chunk-id space of the table (0 if empty)."""
        if not len(self):
            return 0
        return int(self.chunks.max()) + 1

    # ------------------------------------------------------------------
    # Transformations (column ops; no per-transfer objects)
    # ------------------------------------------------------------------
    def shifted(self, offset: float) -> "TransferTable":
        """Every transfer moved later by ``offset`` seconds."""
        return TransferTable(
            self.starts + offset, self.ends + offset, self.chunks, self.sources, self.dests
        )

    def reversed_in_time(self, total: float) -> "TransferTable":
        """Time-mirror around ``total`` with flipped transfer directions."""
        return TransferTable(
            total - self.ends, total - self.starts, self.chunks, self.dests, self.sources
        )

    def concatenated(self, other: "TransferTable") -> "TransferTable":
        """Rows of ``self`` followed by rows of ``other``."""
        return TransferTable(
            np.concatenate((self.starts, other.starts)),
            np.concatenate((self.ends, other.ends)),
            np.concatenate((self.chunks, other.chunks)),
            np.concatenate((self.sources, other.sources)),
            np.concatenate((self.dests, other.dests)),
        )

    def select(self, mask_or_indices: np.ndarray) -> "TransferTable":
        """Row subset (boolean mask or index array), order preserved."""
        picker = mask_or_indices
        return TransferTable(
            self.starts[picker],
            self.ends[picker],
            self.chunks[picker],
            self.sources[picker],
            self.dests[picker],
        )

    # ------------------------------------------------------------------
    # Cached groupings
    # ------------------------------------------------------------------
    def _cached(self, key: str, builder):
        value = self._cache.get(key)
        if value is None:
            value = builder()
            self._cache[key] = value
        return value

    def _npu_stride(self) -> int:
        """Encoding stride covering every NPU index appearing in the table."""
        if not len(self):
            return 1
        return int(max(self.sources.max(), self.dests.max())) + 1

    def link_codes(self) -> np.ndarray:
        """Per-row ``source * stride + dest`` codes identifying the link used."""
        return self._cached(
            "link_codes", lambda: self.sources * self._npu_stride() + self.dests
        )

    def by_link(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Rows grouped by link, each group sorted by start time (stable).

        Returns ``(order, indptr, group_sources, group_dests)``: the CSR
        grouping over ``order`` plus the decoded ``(source, dest)`` key of
        each group.  Matches the pre-refactor
        ``CollectiveAlgorithm.link_occupancy`` semantics (per-link lists
        sorted by start, ties in original order).
        """

        def build():
            order, indptr, codes = grouped_order(self.link_codes(), self.starts)
            stride = self._npu_stride()
            return order, indptr, codes // stride, codes % stride

        return self._cached("by_link", build)

    def link_group_of_rows(self) -> np.ndarray:
        """Per-row index of its :meth:`by_link` group."""

        def build():
            order, indptr, _, _ = self.by_link()
            groups = np.empty(len(self), dtype=np.int64)
            groups[order] = np.repeat(
                np.arange(indptr.shape[0] - 1, dtype=np.int64), np.diff(indptr)
            )
            return groups

        return self._cached("link_group_of_rows", build)

    def by_dest_chunk(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows grouped by ``(dest, chunk)``: ``(order, indptr, codes)``.

        Codes are ``dest * num_chunks + chunk``; within a group rows keep
        their original order.
        """

        def build():
            stride = max(1, self.num_chunks)
            return grouped_order(self.dests * stride + self.chunks)

        return self._cached("by_dest_chunk", build)

    def first_overlap(self, eps: float) -> Optional[Tuple[int, int]]:
        """First pair of same-link transfers overlapping in time, or ``None``.

        Scans the :meth:`by_link` order (per link, sorted by start) for an
        entry starting more than ``eps`` before its predecessor ends, and
        returns the two row indices ``(earlier, later)``.  The single
        overlap predicate shared by
        :meth:`~repro.core.algorithm.CollectiveAlgorithm.has_link_overlap`
        and the verification layer's congestion-freedom check.
        """
        if len(self) < 2:
            return None
        order, indptr, _, _ = self.by_link()
        starts = self.starts[order]
        ends = self.ends[order]
        overlap = starts[1:] < ends[:-1] - eps
        # Successive rows belonging to different links never overlap.
        overlap[indptr[1:-1] - 1] = False
        if not overlap.any():
            return None
        position = int(np.flatnonzero(overlap)[0])
        return int(order[position]), int(order[position + 1])

    def lexsorted_order(self) -> np.ndarray:
        """Full lexicographic order over ``(start, end, chunk, source, dest)``.

        The order ``sorted(transfers)`` produces on the tuple view; used by
        the exporters.
        """
        return self._cached(
            "lexsorted_order",
            lambda: np.lexsort((self.dests, self.sources, self.chunks, self.ends, self.starts)),
        )

    def time_sorted_order(self) -> np.ndarray:
        """Stable order by ``(start, end)`` — the adapters' message order."""
        return self._cached(
            "time_sorted_order", lambda: np.lexsort((self.ends, self.starts))
        )

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def link_totals(self, per_row_values) -> Dict[Tuple[int, int], float]:
        """Accumulate ``per_row_values`` per link, in row order.

        ``per_row_values`` may be a scalar (the same addend per row — e.g. a
        chunk size) or a per-row array.  Accumulation happens left-to-right
        in original row order, reproducing the float results of the
        pre-refactor per-transfer dict updates exactly.
        """
        order, indptr, group_sources, group_dests = self.by_link()
        groups = self.link_group_of_rows()
        totals = np.zeros(indptr.shape[0] - 1, dtype=np.float64)
        if np.isscalar(per_row_values):
            addends = np.full(len(self), float(per_row_values))
        else:
            addends = np.asarray(per_row_values, dtype=np.float64)
        # ufunc.at is unbuffered and applies the adds in index order — the
        # same left-to-right accumulation as the historical dict loop.
        np.add.at(totals, groups, addends)
        return {
            (int(source), int(dest)): float(total)
            for source, dest, total in zip(group_sources.tolist(), group_dests.tolist(), totals.tolist())
        }

    def delivered_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unique ``(dest, chunk)`` pairs receiving a transfer."""
        if not len(self):
            return _EMPTY_INT, _EMPTY_INT
        _, indptr, codes = self.by_dest_chunk()
        stride = max(1, self.num_chunks)
        return codes // stride, codes % stride
