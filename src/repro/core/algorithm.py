"""Representation of a synthesized collective algorithm.

A collective algorithm is the static path of every chunk through the network
(Sec. II-B): a set of link-chunk matches, each occupying one physical link for
one time span.  :class:`CollectiveAlgorithm` is the output of both the TACOS
synthesizer and the baseline algorithm generators, and the input to the
congestion-aware simulator and the analysis utilities.

Since the columnar-IR refactor, the canonical storage is a
:class:`~repro.core.transfers.TransferTable` (struct-of-arrays numpy columns);
the :class:`ChunkTransfer` tuple list is a lazily materialized *view* kept for
API compatibility.  An algorithm can be built from either representation —
the synthesizer's matching loop still appends tuples, while every
transformation (``shifted`` / ``reversed_in_time`` / ``concatenated``) and
every aggregate (``link_bytes``, ``link_occupancy``, ``collective_time``)
runs as column arithmetic without touching per-transfer objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

from repro.core.transfers import TransferTable

__all__ = ["ChunkTransfer", "CollectiveAlgorithm"]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-9

_tuple_new = tuple.__new__


class _ChunkTransferFields(NamedTuple):
    start: float
    end: float
    chunk: int
    source: int
    dest: int


class ChunkTransfer(_ChunkTransferFields):
    """One link-chunk match: ``chunk`` travels ``source -> dest`` over [start, end].

    A named tuple (ordered and compared field-by-field, hashable, immutable).
    The synthesizer creates one instance per match on its innermost loop, so
    construction is kept C-speed: the public constructor validates, while hot
    paths with already-proven invariants use ``ChunkTransfer._make(values)``.

    Attributes
    ----------
    start, end:
        Transmission start and completion times in seconds.
    chunk:
        Chunk identifier (see the collective pattern for its meaning).
    source, dest:
        Endpoint NPUs of the physical link used.
    """

    __slots__ = ()

    def __new__(cls, start: float, end: float, chunk: int, source: int, dest: int):
        self = _tuple_new(cls, (start, end, chunk, source, dest))
        if end < start:
            raise ValueError(f"transfer ends before it starts: {self}")
        return self

    @property
    def link(self) -> Tuple[int, int]:
        """The ``(source, dest)`` key of the physical link used."""
        return (self.source, self.dest)

    @property
    def duration(self) -> float:
        """Transmission time in seconds."""
        return self.end - self.start


class CollectiveAlgorithm:
    """A complete collective algorithm: every chunk's static path with timing.

    Exactly one of ``transfers`` (a :class:`ChunkTransfer` list) or ``table``
    (a :class:`~repro.core.transfers.TransferTable`) must be provided; the
    other representation is materialized lazily on first access.

    Attributes
    ----------
    transfers:
        All link-chunk matches, in no particular order (lazy tuple view).
    table:
        The columnar transfer IR (lazy when constructed from ``transfers``).
    num_npus:
        Number of NPUs the algorithm spans.
    chunk_size:
        Size of each chunk in bytes.
    collective_size:
        Per-NPU collective buffer size in bytes.
    pattern_name:
        Name of the collective pattern (e.g. ``"AllGather"``).
    topology_name:
        Name of the topology the algorithm was synthesized for.
    metadata:
        Free-form extra information (e.g. the Reduce-Scatter/All-Gather phase
        boundary of an All-Reduce, or the synthesizer trial that produced it).
    """

    def __init__(
        self,
        transfers: Optional[List[ChunkTransfer]] = None,
        num_npus: Optional[int] = None,
        chunk_size: Optional[float] = None,
        collective_size: Optional[float] = None,
        pattern_name: str = "Collective",
        topology_name: str = "",
        metadata: Optional[Dict[str, object]] = None,
        *,
        table: Optional[TransferTable] = None,
    ) -> None:
        if (transfers is None) == (table is None):
            raise TypeError("provide exactly one of transfers or table")
        if num_npus is None or chunk_size is None or collective_size is None:
            raise TypeError("num_npus, chunk_size, and collective_size are required")
        self._transfers = transfers
        self._table = table
        self._view: Optional[List[ChunkTransfer]] = None
        self.num_npus = num_npus
        self.chunk_size = chunk_size
        self.collective_size = collective_size
        self.pattern_name = pattern_name
        self.topology_name = topology_name
        self.metadata: Dict[str, object] = {} if metadata is None else metadata

    @classmethod
    def from_table(
        cls,
        table: TransferTable,
        num_npus: int,
        chunk_size: float,
        collective_size: float,
        pattern_name: str = "Collective",
        topology_name: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "CollectiveAlgorithm":
        """Columnar fast path: wrap ``table`` without materializing tuples."""
        return cls(
            table=table,
            num_npus=num_npus,
            chunk_size=chunk_size,
            collective_size=collective_size,
            pattern_name=pattern_name,
            topology_name=topology_name,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    @property
    def transfers(self) -> List[ChunkTransfer]:
        """The per-transfer tuple view.

        For a list-constructed algorithm this is the authoritative list (it
        may be mutated in place, exactly like the pre-refactor dataclass
        field — the columnar view below always rebuilds from it).  For a
        table-constructed algorithm it is a lazily materialized *snapshot*
        of the columns; mutating that snapshot does not change the
        algorithm.
        """
        if self._transfers is not None:
            return self._transfers
        if self._view is None:
            self._view = self._table.to_transfers()
        return self._view

    @property
    def table(self) -> TransferTable:
        """The columnar transfer IR.

        For a list-constructed algorithm the table is rebuilt from the
        (possibly mutated) list on every access, so column ops never read
        stale data; for a table-constructed algorithm the stored table — and
        its cached groupings — is authoritative.
        """
        if self._table is not None:
            return self._table
        return TransferTable.from_transfers(self._transfers)

    def _rebuild(self, table: TransferTable, **overrides) -> "CollectiveAlgorithm":
        """A table-backed copy with this algorithm's scalar fields."""
        fields = dict(
            num_npus=self.num_npus,
            chunk_size=self.chunk_size,
            collective_size=self.collective_size,
            pattern_name=self.pattern_name,
            topology_name=self.topology_name,
            metadata=dict(self.metadata),
        )
        fields.update(overrides)
        return CollectiveAlgorithm(table=table, **fields)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def collective_time(self) -> float:
        """Completion time of the last transfer (seconds); 0 for empty algorithms."""
        return self.table.max_end

    @property
    def start_time(self) -> float:
        """Start time of the earliest transfer (seconds)."""
        return self.table.min_start

    @property
    def num_transfers(self) -> int:
        """Total number of link-chunk matches."""
        if self._transfers is not None:
            return len(self._transfers)
        return len(self._table)

    def algorithmic_bandwidth(self) -> float:
        """Collective bandwidth (bytes/s) = collective size / collective time."""
        duration = self.collective_time
        if duration <= 0:
            return float("inf")
        return self.collective_size / duration

    # ------------------------------------------------------------------
    # Per-link views
    # ------------------------------------------------------------------
    def link_occupancy(self) -> Dict[Tuple[int, int], List[ChunkTransfer]]:
        """Transfers grouped by physical link, sorted by start time."""
        table = self.table
        order, indptr, group_sources, group_dests = table.by_link()
        transfers = self.transfers
        positions = order.tolist()
        bounds = indptr.tolist()
        occupancy: Dict[Tuple[int, int], List[ChunkTransfer]] = {}
        for group, (source, dest) in enumerate(
            zip(group_sources.tolist(), group_dests.tolist())
        ):
            occupancy[(source, dest)] = [
                transfers[index] for index in positions[bounds[group] : bounds[group + 1]]
            ]
        return occupancy

    def link_bytes(self) -> Dict[Tuple[int, int], float]:
        """Total bytes sent over each link (the Fig. 1 heat-map quantity)."""
        return self.table.link_totals(self.chunk_size)

    def link_busy_time(self) -> Dict[Tuple[int, int], float]:
        """Total busy time of each link in seconds."""
        table = self.table
        return table.link_totals(table.ends - table.starts)

    def chunk_paths(self) -> Dict[int, List[ChunkTransfer]]:
        """Transfers grouped by chunk id, sorted by start time."""
        from repro.core.transfers import grouped_order

        table = self.table
        order, indptr, chunk_ids = grouped_order(table.chunks, table.starts)
        transfers = self.transfers
        positions = order.tolist()
        bounds = indptr.tolist()
        return {
            int(chunk): [
                transfers[index] for index in positions[bounds[group] : bounds[group + 1]]
            ]
            for group, chunk in enumerate(chunk_ids.tolist())
        }

    def delivered_chunks(self, precondition: Mapping[int, Iterable[int]]) -> Dict[int, set]:
        """Final chunk ownership implied by the transfers.

        Starting from ``precondition`` (chunk sets per NPU), every transfer
        adds its chunk to its destination's set.
        """
        holdings = {npu: set(chunks) for npu, chunks in precondition.items()}
        for npu in range(self.num_npus):
            holdings.setdefault(npu, set())
        dests, chunks = self.table.delivered_pairs()
        for dest, chunk in zip(dests.tolist(), chunks.tolist()):
            holdings[dest].add(chunk)
        return holdings

    # ------------------------------------------------------------------
    # Transformations (column ops)
    # ------------------------------------------------------------------
    def shifted(self, offset: float) -> "CollectiveAlgorithm":
        """Return a copy with every transfer shifted later by ``offset`` seconds."""
        return self._rebuild(self.table.shifted(offset))

    def reversed_in_time(self, duration: Optional[float] = None) -> "CollectiveAlgorithm":
        """Time-reverse the algorithm and flip every transfer's direction.

        This is the Fig. 11 transformation: an All-Gather synthesized on the
        link-reversed topology, played backwards, is a Reduce-Scatter on the
        original topology.  ``duration`` defaults to the collective time.
        """
        total = self.collective_time if duration is None else duration
        return self._rebuild(self.table.reversed_in_time(total))

    def concatenated(
        self,
        other: "CollectiveAlgorithm",
        *,
        pattern_name: Optional[str] = None,
    ) -> "CollectiveAlgorithm":
        """Append ``other`` after this algorithm in time (e.g. RS then AG).

        ``other`` is shifted so it starts when this algorithm completes.  The
        phase boundary is recorded in the result's metadata.
        """
        boundary = self.collective_time
        combined = self.table.concatenated(other.table.shifted(boundary))
        metadata = dict(self.metadata)
        metadata["phase_boundary"] = boundary
        metadata["phase_names"] = (self.pattern_name, other.pattern_name)
        return self._rebuild(
            combined,
            pattern_name=pattern_name or f"{self.pattern_name}+{other.pattern_name}",
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Structural checks (full semantic verification lives in core.verification)
    # ------------------------------------------------------------------
    def has_link_overlap(self) -> bool:
        """Whether any link carries two chunks at overlapping times."""
        return self.table.first_overlap(_TIME_EPS) is not None

    def summary(self) -> str:
        """One-line human-readable description of the algorithm."""
        return (
            f"{self.pattern_name} on {self.topology_name}: "
            f"{self.num_transfers} transfers, "
            f"{self.collective_time * 1e6:.2f} us, "
            f"{self.algorithmic_bandwidth() / 1e9:.2f} GB/s"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CollectiveAlgorithm):
            return NotImplemented
        return (
            self.num_npus == other.num_npus
            and self.chunk_size == other.chunk_size
            and self.collective_size == other.collective_size
            and self.pattern_name == other.pattern_name
            and self.topology_name == other.topology_name
            and self.metadata == other.metadata
            and self.transfers == other.transfers
        )

    def __repr__(self) -> str:
        return (
            f"CollectiveAlgorithm(pattern={self.pattern_name!r}, topology={self.topology_name!r}, "
            f"transfers={self.num_transfers}, time={self.collective_time:.3e}s)"
        )
