"""Representation of a synthesized collective algorithm.

A collective algorithm is the static path of every chunk through the network
(Sec. II-B): a set of link-chunk matches, each occupying one physical link for
one time span.  :class:`CollectiveAlgorithm` is the output of both the TACOS
synthesizer and the baseline algorithm generators, and the input to the
congestion-aware simulator and the analysis utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

__all__ = ["ChunkTransfer", "CollectiveAlgorithm"]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-9

_tuple_new = tuple.__new__


class _ChunkTransferFields(NamedTuple):
    start: float
    end: float
    chunk: int
    source: int
    dest: int


class ChunkTransfer(_ChunkTransferFields):
    """One link-chunk match: ``chunk`` travels ``source -> dest`` over [start, end].

    A named tuple (ordered and compared field-by-field, hashable, immutable).
    The synthesizer creates one instance per match on its innermost loop, so
    construction is kept C-speed: the public constructor validates, while hot
    paths with already-proven invariants use ``ChunkTransfer._make(values)``.

    Attributes
    ----------
    start, end:
        Transmission start and completion times in seconds.
    chunk:
        Chunk identifier (see the collective pattern for its meaning).
    source, dest:
        Endpoint NPUs of the physical link used.
    """

    __slots__ = ()

    def __new__(cls, start: float, end: float, chunk: int, source: int, dest: int):
        self = _tuple_new(cls, (start, end, chunk, source, dest))
        if end < start:
            raise ValueError(f"transfer ends before it starts: {self}")
        return self

    @property
    def link(self) -> Tuple[int, int]:
        """The ``(source, dest)`` key of the physical link used."""
        return (self.source, self.dest)

    @property
    def duration(self) -> float:
        """Transmission time in seconds."""
        return self.end - self.start


@dataclass
class CollectiveAlgorithm:
    """A complete collective algorithm: every chunk's static path with timing.

    Attributes
    ----------
    transfers:
        All link-chunk matches, in no particular order.
    num_npus:
        Number of NPUs the algorithm spans.
    chunk_size:
        Size of each chunk in bytes.
    collective_size:
        Per-NPU collective buffer size in bytes.
    pattern_name:
        Name of the collective pattern (e.g. ``"AllGather"``).
    topology_name:
        Name of the topology the algorithm was synthesized for.
    metadata:
        Free-form extra information (e.g. the Reduce-Scatter/All-Gather phase
        boundary of an All-Reduce, or the synthesizer trial that produced it).
    """

    transfers: List[ChunkTransfer]
    num_npus: int
    chunk_size: float
    collective_size: float
    pattern_name: str = "Collective"
    topology_name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def collective_time(self) -> float:
        """Completion time of the last transfer (seconds); 0 for empty algorithms."""
        if not self.transfers:
            return 0.0
        return max(transfer.end for transfer in self.transfers)

    @property
    def start_time(self) -> float:
        """Start time of the earliest transfer (seconds)."""
        if not self.transfers:
            return 0.0
        return min(transfer.start for transfer in self.transfers)

    @property
    def num_transfers(self) -> int:
        """Total number of link-chunk matches."""
        return len(self.transfers)

    def algorithmic_bandwidth(self) -> float:
        """Collective bandwidth (bytes/s) = collective size / collective time."""
        duration = self.collective_time
        if duration <= 0:
            return float("inf")
        return self.collective_size / duration

    # ------------------------------------------------------------------
    # Per-link views
    # ------------------------------------------------------------------
    def link_occupancy(self) -> Dict[Tuple[int, int], List[ChunkTransfer]]:
        """Transfers grouped by physical link, sorted by start time."""
        occupancy: Dict[Tuple[int, int], List[ChunkTransfer]] = {}
        for transfer in self.transfers:
            occupancy.setdefault(transfer.link, []).append(transfer)
        for entries in occupancy.values():
            entries.sort(key=lambda transfer: transfer.start)
        return occupancy

    def link_bytes(self) -> Dict[Tuple[int, int], float]:
        """Total bytes sent over each link (the Fig. 1 heat-map quantity)."""
        loads: Dict[Tuple[int, int], float] = {}
        for transfer in self.transfers:
            loads[transfer.link] = loads.get(transfer.link, 0.0) + self.chunk_size
        return loads

    def link_busy_time(self) -> Dict[Tuple[int, int], float]:
        """Total busy time of each link in seconds."""
        busy: Dict[Tuple[int, int], float] = {}
        for transfer in self.transfers:
            busy[transfer.link] = busy.get(transfer.link, 0.0) + transfer.duration
        return busy

    def chunk_paths(self) -> Dict[int, List[ChunkTransfer]]:
        """Transfers grouped by chunk id, sorted by start time."""
        paths: Dict[int, List[ChunkTransfer]] = {}
        for transfer in self.transfers:
            paths.setdefault(transfer.chunk, []).append(transfer)
        for entries in paths.values():
            entries.sort(key=lambda transfer: transfer.start)
        return paths

    def delivered_chunks(self, precondition: Mapping[int, Iterable[int]]) -> Dict[int, set]:
        """Final chunk ownership implied by the transfers.

        Starting from ``precondition`` (chunk sets per NPU), every transfer
        adds its chunk to its destination's set.
        """
        holdings = {npu: set(chunks) for npu, chunks in precondition.items()}
        for npu in range(self.num_npus):
            holdings.setdefault(npu, set())
        for transfer in sorted(self.transfers, key=lambda item: item.end):
            holdings[transfer.dest].add(transfer.chunk)
        return holdings

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, offset: float) -> "CollectiveAlgorithm":
        """Return a copy with every transfer shifted later by ``offset`` seconds."""
        make = _tuple_new
        moved = [
            make(ChunkTransfer, (transfer[0] + offset, transfer[1] + offset, transfer[2], transfer[3], transfer[4]))
            for transfer in self.transfers
        ]
        return CollectiveAlgorithm(
            transfers=moved,
            num_npus=self.num_npus,
            chunk_size=self.chunk_size,
            collective_size=self.collective_size,
            pattern_name=self.pattern_name,
            topology_name=self.topology_name,
            metadata=dict(self.metadata),
        )

    def reversed_in_time(self, duration: Optional[float] = None) -> "CollectiveAlgorithm":
        """Time-reverse the algorithm and flip every transfer's direction.

        This is the Fig. 11 transformation: an All-Gather synthesized on the
        link-reversed topology, played backwards, is a Reduce-Scatter on the
        original topology.  ``duration`` defaults to the collective time.
        """
        total = self.collective_time if duration is None else duration
        make = _tuple_new
        reversed_transfers = [
            make(ChunkTransfer, (total - transfer[1], total - transfer[0], transfer[2], transfer[4], transfer[3]))
            for transfer in self.transfers
        ]
        return CollectiveAlgorithm(
            transfers=reversed_transfers,
            num_npus=self.num_npus,
            chunk_size=self.chunk_size,
            collective_size=self.collective_size,
            pattern_name=self.pattern_name,
            topology_name=self.topology_name,
            metadata=dict(self.metadata),
        )

    def concatenated(
        self,
        other: "CollectiveAlgorithm",
        *,
        pattern_name: Optional[str] = None,
    ) -> "CollectiveAlgorithm":
        """Append ``other`` after this algorithm in time (e.g. RS then AG).

        ``other`` is shifted so it starts when this algorithm completes.  The
        phase boundary is recorded in the result's metadata.
        """
        boundary = self.collective_time
        shifted_other = other.shifted(boundary)
        combined = list(self.transfers) + list(shifted_other.transfers)
        metadata = dict(self.metadata)
        metadata["phase_boundary"] = boundary
        metadata["phase_names"] = (self.pattern_name, other.pattern_name)
        return CollectiveAlgorithm(
            transfers=combined,
            num_npus=self.num_npus,
            chunk_size=self.chunk_size,
            collective_size=self.collective_size,
            pattern_name=pattern_name or f"{self.pattern_name}+{other.pattern_name}",
            topology_name=self.topology_name,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Structural checks (full semantic verification lives in core.verification)
    # ------------------------------------------------------------------
    def has_link_overlap(self) -> bool:
        """Whether any link carries two chunks at overlapping times."""
        for entries in self.link_occupancy().values():
            for earlier, later in zip(entries, entries[1:]):
                if later.start < earlier.end - _TIME_EPS:
                    return True
        return False

    def summary(self) -> str:
        """One-line human-readable description of the algorithm."""
        return (
            f"{self.pattern_name} on {self.topology_name}: "
            f"{self.num_transfers} transfers, "
            f"{self.collective_time * 1e6:.2f} us, "
            f"{self.algorithmic_bandwidth() / 1e9:.2f} GB/s"
        )

    def __repr__(self) -> str:
        return (
            f"CollectiveAlgorithm(pattern={self.pattern_name!r}, topology={self.topology_name!r}, "
            f"transfers={self.num_transfers}, time={self.collective_time:.3e}s)"
        )
