"""Closed-form alpha-beta cost models for the classic collective algorithms.

These are the textbook analytical costs (Thakur et al., Chan et al.) of the
basic All-Reduce algorithms on their *preferred* topologies, parameterized by
the per-link alpha and beta.  They serve two purposes:

* validating the congestion-aware simulator: when an algorithm runs on the
  topology it was designed for, the simulated time must match the closed form
  (this is the role the real-system validation plays for ASTRA-sim in the
  paper, Sec. V-C); and
* quick what-if estimates without running a simulation.

All functions return seconds for a per-NPU buffer of ``collective_size``
bytes.  ``alpha`` is the per-message latency and ``bandwidth`` the per-link
bandwidth in bytes/s (a bidirectional ring has ``2 *`` the link bandwidth
available per NPU because both directions carry half the blocks).
"""

from __future__ import annotations

import math

from repro.errors import ReproError

__all__ = [
    "ring_all_reduce_time",
    "ring_all_gather_time",
    "direct_all_reduce_time",
    "rhd_all_reduce_time",
    "tree_all_reduce_time",
    "hierarchical_all_reduce_time",
]


def _check(num_npus: int, collective_size: float, bandwidth: float) -> None:
    if num_npus < 2:
        raise ReproError(f"need at least 2 NPUs, got {num_npus}")
    if collective_size <= 0:
        raise ReproError(f"collective size must be positive, got {collective_size}")
    if bandwidth <= 0:
        raise ReproError(f"bandwidth must be positive, got {bandwidth}")


def ring_all_reduce_time(
    num_npus: int,
    collective_size: float,
    *,
    alpha: float,
    bandwidth: float,
    bidirectional: bool = True,
) -> float:
    """Ring All-Reduce: ``2(N-1)`` steps, each moving ``size/N`` per direction.

    On a bidirectional ring both directions carry half of the blocks, so the
    effective per-step payload per link direction is ``size / (2N)``.
    """
    _check(num_npus, collective_size, bandwidth)
    steps = 2 * (num_npus - 1)
    per_step_bytes = collective_size / num_npus / (2 if bidirectional else 1)
    return steps * (alpha + per_step_bytes / bandwidth)


def ring_all_gather_time(
    num_npus: int,
    collective_size: float,
    *,
    alpha: float,
    bandwidth: float,
    bidirectional: bool = True,
) -> float:
    """Ring All-Gather: ``N-1`` steps of ``size/N`` per direction."""
    _check(num_npus, collective_size, bandwidth)
    steps = num_npus - 1
    per_step_bytes = collective_size / num_npus / (2 if bidirectional else 1)
    return steps * (alpha + per_step_bytes / bandwidth)


def direct_all_reduce_time(
    num_npus: int,
    collective_size: float,
    *,
    alpha: float,
    bandwidth: float,
) -> float:
    """Direct All-Reduce on a fully-connected topology.

    One Reduce-Scatter step and one All-Gather step; in each, every NPU sends
    ``(N-1)`` messages of ``size/N`` bytes over its ``N-1`` dedicated links
    concurrently, so each step costs ``alpha + size / (N * bandwidth)``.
    """
    _check(num_npus, collective_size, bandwidth)
    per_step = alpha + collective_size / num_npus / bandwidth
    return 2 * per_step


def rhd_all_reduce_time(
    num_npus: int,
    collective_size: float,
    *,
    alpha: float,
    bandwidth: float,
) -> float:
    """Recursive Halving-Doubling All-Reduce on a power-of-two NPU count.

    ``2 log2(N)`` exchange steps; the halving steps move ``size/2, size/4, ...``
    and the doubling steps mirror them, for a total payload of
    ``2 (N-1)/N * size`` per NPU.
    """
    _check(num_npus, collective_size, bandwidth)
    stages = int(math.log2(num_npus))
    if 1 << stages != num_npus:
        raise ReproError(f"RHD needs a power-of-two NPU count, got {num_npus}")
    latency = 2 * stages * alpha
    payload = 2 * (num_npus - 1) / num_npus * collective_size
    return latency + payload / bandwidth


def tree_all_reduce_time(
    num_npus: int,
    collective_size: float,
    *,
    alpha: float,
    bandwidth: float,
    num_trees: int = 2,
) -> float:
    """Binary-tree All-Reduce (reduce up + broadcast down), DBT-style.

    Each of the ``num_trees`` trees carries ``1/num_trees`` of the buffer over
    ``~2 ceil(log2 N)`` levels; the payload term is the full buffer share both
    up and down.
    """
    _check(num_npus, collective_size, bandwidth)
    if num_trees < 1:
        raise ReproError(f"need at least one tree, got {num_trees}")
    depth = max(1, math.ceil(math.log2(num_npus)))
    share = collective_size / num_trees
    return 2 * depth * alpha + 2 * share / bandwidth


def hierarchical_all_reduce_time(
    dims,
    collective_size: float,
    *,
    alpha: float,
    bandwidths,
) -> float:
    """BlueConnect-style hierarchical All-Reduce over multi-dimensional networks.

    Reduce-Scatter sweeps run over dimensions ``0..k`` and All-Gather sweeps in
    reverse; the sweep over dimension ``j`` moves ``(d_j - 1)/d_j`` of the data
    remaining at that level (``size / prod_{i<j} d_i``) over that dimension's
    per-link bandwidth.
    """
    dims = [int(dim) for dim in dims]
    bandwidths = list(bandwidths)
    if len(dims) != len(bandwidths):
        raise ReproError("dims and bandwidths must have the same length")
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    _check(num_npus, collective_size, min(bandwidths))
    total = 0.0
    remaining = collective_size
    for dim, bandwidth in zip(dims, bandwidths):
        if dim == 1:
            continue
        steps = dim - 1
        payload = remaining * (dim - 1) / dim
        total += 2 * (steps * alpha + payload / bandwidth)  # RS sweep + AG sweep
        remaining /= dim
    return total
