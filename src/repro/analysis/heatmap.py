"""Link-load heat maps (Fig. 1 and Fig. 15b).

The heat map at position ``(src, dest)`` shows the total bytes transferred
over the link ``src -> dest`` during a collective, normalized to the largest
per-link load.  Cells for non-existent links are marked with ``numpy.nan``
(rendered black in the paper's figures).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.core.algorithm import CollectiveAlgorithm
from repro.simulator.result import SimulationResult
from repro.topology.topology import Topology

__all__ = ["link_load_matrix", "link_load_statistics"]


def _link_loads(measured: Union[CollectiveAlgorithm, SimulationResult]) -> Dict[Tuple[int, int], float]:
    if isinstance(measured, CollectiveAlgorithm):
        return measured.link_bytes()
    return dict(measured.link_bytes)


def link_load_matrix(
    measured: Union[CollectiveAlgorithm, SimulationResult],
    topology: Topology,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Build the ``num_npus x num_npus`` link-load matrix of Fig. 1.

    Entry ``[src, dest]`` is the load of the physical link ``src -> dest``
    (normalized by the maximum load when ``normalize`` is True); entries for
    missing links are ``nan``.
    """
    size = topology.num_npus
    matrix = np.full((size, size), np.nan)
    for source, dest in topology.link_keys():
        matrix[source, dest] = 0.0
    loads = _link_loads(measured)
    for (source, dest), load in loads.items():
        matrix[source, dest] = load
    if normalize:
        peak = np.nanmax(matrix)
        if peak and peak > 0:
            matrix = matrix / peak
    return matrix


def link_load_statistics(
    measured: Union[CollectiveAlgorithm, SimulationResult],
    topology: Topology,
) -> Dict[str, float]:
    """Summary statistics of per-link loads: max, mean, imbalance, and idle share.

    ``imbalance`` is max/mean over links that exist (1.0 means perfectly
    balanced); ``idle_fraction`` is the share of physical links that carried
    no traffic at all (the undersubscription the paper highlights).
    """
    loads = _link_loads(measured)
    existing = list(topology.link_keys())
    values = np.array([loads.get(link, 0.0) for link in existing], dtype=float)
    if values.size == 0:
        return {"max": 0.0, "mean": 0.0, "imbalance": 1.0, "idle_fraction": 0.0}
    mean = float(values.mean())
    peak = float(values.max())
    return {
        "max": peak,
        "mean": mean,
        "imbalance": peak / mean if mean > 0 else float("inf"),
        "idle_fraction": float(np.count_nonzero(values == 0.0)) / values.size,
    }
