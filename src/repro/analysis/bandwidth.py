"""Collective bandwidth and efficiency metrics."""

from __future__ import annotations

from typing import Union

from repro.core.algorithm import CollectiveAlgorithm
from repro.errors import ReproError
from repro.simulator.result import SimulationResult
from repro.topology.link import GIGABYTE

__all__ = [
    "collective_bandwidth",
    "collective_bandwidth_gbps",
    "efficiency",
    "speedup",
    "normalize_by",
]

_Measurable = Union[CollectiveAlgorithm, SimulationResult]


def _collective_time(measured: _Measurable) -> float:
    if isinstance(measured, CollectiveAlgorithm):
        return measured.collective_time
    return measured.completion_time


def _collective_size(measured: _Measurable) -> float:
    if isinstance(measured, CollectiveAlgorithm):
        return measured.collective_size
    return measured.collective_size


def collective_bandwidth(measured: _Measurable) -> float:
    """Collective bandwidth in bytes/s (collective size divided by completion time)."""
    size = _collective_size(measured)
    duration = _collective_time(measured)
    if size <= 0:
        raise ReproError("collective size is unknown; cannot compute bandwidth")
    if duration <= 0:
        return float("inf")
    return size / duration


def collective_bandwidth_gbps(measured: _Measurable) -> float:
    """Collective bandwidth in GB/s, the unit used throughout the paper's figures."""
    return collective_bandwidth(measured) / GIGABYTE


def efficiency(measured: _Measurable, ideal_bandwidth: float) -> float:
    """Achieved fraction of the theoretical ideal bandwidth (0..1, can exceed 1 only on bound slack)."""
    if ideal_bandwidth <= 0:
        raise ReproError(f"ideal bandwidth must be positive, got {ideal_bandwidth}")
    return collective_bandwidth(measured) / ideal_bandwidth


def speedup(baseline_time: float, improved_time: float) -> float:
    """How many times faster ``improved_time`` is than ``baseline_time``."""
    if improved_time <= 0:
        raise ReproError(f"improved time must be positive, got {improved_time}")
    return baseline_time / improved_time


def normalize_by(values: dict, reference_key: str) -> dict:
    """Normalize a ``{label: value}`` mapping by the value at ``reference_key``.

    Used to present tables the way the paper does (e.g. Table V normalizes
    every collective time over TACOS).
    """
    if reference_key not in values:
        raise ReproError(f"reference {reference_key!r} missing from {sorted(values)}")
    reference = values[reference_key]
    if reference == 0:
        raise ReproError(f"reference value for {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}
