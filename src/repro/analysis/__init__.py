"""Analysis utilities: ideal bounds, bandwidths, heat maps, utilization."""

from repro.analysis.bandwidth import (
    collective_bandwidth,
    collective_bandwidth_gbps,
    efficiency,
    normalize_by,
    speedup,
)
from repro.analysis.cost_models import (
    direct_all_reduce_time,
    hierarchical_all_reduce_time,
    rhd_all_reduce_time,
    ring_all_gather_time,
    ring_all_reduce_time,
    tree_all_reduce_time,
)
from repro.analysis.heatmap import link_load_matrix, link_load_statistics
from repro.analysis.ideal import (
    ideal_all_gather_bandwidth,
    ideal_all_gather_time,
    ideal_all_reduce_bandwidth,
    ideal_all_reduce_time,
    ideal_reduce_scatter_time,
)
from repro.analysis.utilization import (
    average_utilization,
    normalized_timeline,
    utilization_timeline,
)

__all__ = [
    "average_utilization",
    "collective_bandwidth",
    "collective_bandwidth_gbps",
    "direct_all_reduce_time",
    "efficiency",
    "hierarchical_all_reduce_time",
    "rhd_all_reduce_time",
    "ring_all_gather_time",
    "ring_all_reduce_time",
    "tree_all_reduce_time",
    "ideal_all_gather_bandwidth",
    "ideal_all_gather_time",
    "ideal_all_reduce_bandwidth",
    "ideal_all_reduce_time",
    "ideal_reduce_scatter_time",
    "link_load_matrix",
    "link_load_statistics",
    "normalize_by",
    "normalized_timeline",
    "speedup",
    "utilization_timeline",
]
