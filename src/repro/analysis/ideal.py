"""Theoretical ideal collective performance bounds (Sec. V-A).

The paper reports every synthesized algorithm's efficiency against a
topology-derived upper bound:

``Ideal = CollectiveSize * 2(n-1)/n / min_NPU_bandwidth + Diameter``

The first term is the bottleneck serialization delay — every NPU must inject
and eject ``2(n-1)/n`` of the buffer for an All-Reduce, limited by the
slowest NPU's aggregate link bandwidth — and the second term is the minimum
latency for the two farthest NPUs to communicate.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.topology import Topology

__all__ = [
    "ideal_all_reduce_time",
    "ideal_all_reduce_bandwidth",
    "ideal_all_gather_time",
    "ideal_all_gather_bandwidth",
    "ideal_reduce_scatter_time",
]


def ideal_all_reduce_time(topology: Topology, collective_size: float) -> float:
    """Lower bound on All-Reduce time (seconds) for ``collective_size`` bytes per NPU."""
    if collective_size <= 0:
        raise TopologyError(f"collective size must be positive, got {collective_size}")
    n = topology.num_npus
    bottleneck_bandwidth = topology.min_npu_bandwidth()
    serialization = collective_size * 2.0 * (n - 1) / n / bottleneck_bandwidth
    return serialization + topology.diameter_latency()


def ideal_all_reduce_bandwidth(topology: Topology, collective_size: float) -> float:
    """Upper bound on All-Reduce bandwidth (bytes/s): size divided by the ideal time."""
    return collective_size / ideal_all_reduce_time(topology, collective_size)


def ideal_all_gather_time(topology: Topology, collective_size: float) -> float:
    """Lower bound on All-Gather time: each NPU must eject ``(n-1)/n`` of the buffer."""
    if collective_size <= 0:
        raise TopologyError(f"collective size must be positive, got {collective_size}")
    n = topology.num_npus
    bottleneck_bandwidth = topology.min_npu_bandwidth()
    serialization = collective_size * (n - 1) / n / bottleneck_bandwidth
    return serialization + topology.diameter_latency()


def ideal_all_gather_bandwidth(topology: Topology, collective_size: float) -> float:
    """Upper bound on All-Gather bandwidth (bytes/s)."""
    return collective_size / ideal_all_gather_time(topology, collective_size)


def ideal_reduce_scatter_time(topology: Topology, collective_size: float) -> float:
    """Lower bound on Reduce-Scatter time (same traffic volume as All-Gather)."""
    return ideal_all_gather_time(topology, collective_size)
