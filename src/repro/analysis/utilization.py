"""Link-utilization analysis over the course of a collective (Fig. 16b, Fig. 18)."""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.core.algorithm import CollectiveAlgorithm
from repro.simulator.result import SimulationResult

__all__ = ["utilization_timeline", "average_utilization", "normalized_timeline"]

_Measurable = Union[CollectiveAlgorithm, SimulationResult]


def _busy_intervals(measured: _Measurable) -> Tuple[Dict[Tuple[int, int], list], float, int]:
    if isinstance(measured, SimulationResult):
        return measured.link_busy_intervals, measured.completion_time, measured.num_links
    intervals = {
        link: [(transfer.start, transfer.end) for transfer in transfers]
        for link, transfers in measured.link_occupancy().items()
    }
    # For a synthesized algorithm the number of physical links is not stored;
    # use the links it touches as the denominator (a lower bound used only
    # when a topology-aware denominator is unavailable).
    return intervals, measured.collective_time, len(intervals)


def utilization_timeline(
    measured: _Measurable,
    *,
    num_samples: int = 200,
    num_links: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fraction of links busy at each sampled time.

    ``num_links`` overrides the denominator (pass ``topology.num_links`` when
    analysing a :class:`CollectiveAlgorithm` so idle links count as idle).
    """
    intervals, horizon, default_links = _busy_intervals(measured)
    denominator = num_links or default_links
    times = np.linspace(0.0, horizon, num_samples) if horizon > 0 else np.zeros(num_samples)
    utilization = np.zeros(num_samples)
    if denominator == 0 or horizon <= 0:
        return times, utilization
    for link_intervals in intervals.values():
        for start, end in link_intervals:
            utilization[(times >= start) & (times < end)] += 1.0
    return times, utilization / denominator


def average_utilization(measured: _Measurable, *, num_links: int = 0) -> float:
    """Time-averaged fraction of busy links over the collective's duration."""
    intervals, horizon, default_links = _busy_intervals(measured)
    denominator = num_links or default_links
    if denominator == 0 or horizon <= 0:
        return 0.0
    busy = sum(end - start for link_intervals in intervals.values() for start, end in link_intervals)
    return busy / (denominator * horizon)


def normalized_timeline(
    measured: _Measurable,
    reference_time: float,
    *,
    num_samples: int = 200,
    num_links: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Utilization timeline with the time axis normalized by ``reference_time``.

    The paper normalizes each algorithm's collective duration by the TACOS
    collective time (Fig. 16b / Fig. 18); pass the TACOS time as the reference.
    """
    times, utilization = utilization_timeline(
        measured, num_samples=num_samples, num_links=num_links
    )
    if reference_time <= 0:
        raise ValueError(f"reference time must be positive, got {reference_time}")
    return times / reference_time, utilization
