"""Link-utilization analysis over the course of a collective (Fig. 16b, Fig. 18)."""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.core.algorithm import CollectiveAlgorithm
from repro.simulator.result import SimulationResult, sweep_busy_link_counts

__all__ = ["utilization_timeline", "average_utilization", "normalized_timeline"]

_Measurable = Union[CollectiveAlgorithm, SimulationResult]
_Columns = Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]


def _busy_columns(measured: _Measurable) -> Tuple[_Columns, float, int]:
    """Per-link columnar busy intervals plus (horizon, default link count).

    A :class:`SimulationResult` hands out its cached columns directly; a
    synthesized :class:`CollectiveAlgorithm` gets its link occupancy
    converted once.
    """
    if isinstance(measured, SimulationResult):
        return measured.busy_columns(), measured.completion_time, measured.num_links
    # Slice the algorithm's columnar IR per link (sorted by start within each
    # link) — no ChunkTransfer objects are materialized.
    table = measured.table
    order, indptr, group_sources, group_dests = table.by_link()
    starts = table.starts[order]
    ends = table.ends[order]
    bounds = indptr.tolist()
    columns = {
        (int(source), int(dest)): (
            starts[bounds[group] : bounds[group + 1]],
            ends[bounds[group] : bounds[group + 1]],
        )
        for group, (source, dest) in enumerate(
            zip(group_sources.tolist(), group_dests.tolist())
        )
    }
    # For a synthesized algorithm the number of physical links is not stored;
    # use the links it touches as the denominator (a lower bound used only
    # when a topology-aware denominator is unavailable).
    return columns, measured.collective_time, len(columns)


def utilization_timeline(
    measured: _Measurable,
    *,
    num_samples: int = 200,
    num_links: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fraction of links busy at each sampled time.

    ``num_links`` overrides the denominator (pass ``topology.num_links`` when
    analysing a :class:`CollectiveAlgorithm` so idle links count as idle).
    Runs as one vectorized event sweep; instantaneous (zero-width)
    transmissions count at their sample point rather than being dropped (see
    :func:`repro.simulator.result.sweep_busy_link_counts`).
    """
    columns, horizon, default_links = _busy_columns(measured)
    denominator = num_links or default_links
    times = np.linspace(0.0, horizon, num_samples) if horizon > 0 else np.zeros(num_samples)
    if denominator == 0 or horizon <= 0:
        return times, np.zeros(num_samples)
    return times, sweep_busy_link_counts(times, columns) / denominator


def average_utilization(measured: _Measurable, *, num_links: int = 0) -> float:
    """Time-averaged fraction of busy links over the collective's duration."""
    columns, horizon, default_links = _busy_columns(measured)
    denominator = num_links or default_links
    if denominator == 0 or horizon <= 0:
        return 0.0
    busy = sum(
        float(np.sum(ends) - np.sum(starts)) for starts, ends in columns.values()
    )
    return busy / (denominator * horizon)


def normalized_timeline(
    measured: _Measurable,
    reference_time: float,
    *,
    num_samples: int = 200,
    num_links: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Utilization timeline with the time axis normalized by ``reference_time``.

    The paper normalizes each algorithm's collective duration by the TACOS
    collective time (Fig. 16b / Fig. 18); pass the TACOS time as the reference.
    """
    times, utilization = utilization_timeline(
        measured, num_samples=num_samples, num_links=num_links
    )
    if reference_time <= 0:
        raise ValueError(f"reference time must be positive, got {reference_time}")
    return times / reference_time, utilization
