"""Congestion-aware analytical network simulator (Sec. V-C).

The simulator reproduces the behaviour of the paper's analytical backend:

* every message is routed over a shortest path of physical links
  (store-and-forward: a hop starts only after the previous one completes);
* every link has a message queue and transmits **one message at a time** in
  first-come, first-served order, so contending messages serialize — this is
  the first-order congestion model that exposes the oversubscription of
  topology-unaware collectives;
* a link is occupied for the serialization term of the alpha-beta model
  (``beta * size``); the latency term ``alpha`` is propagation delay, so it
  adds to the message's arrival time but does not block the next message —
  small latency-bound messages therefore pipeline over a link, which is what
  makes the Direct algorithm win for tiny collectives (Fig. 2b);
* a message becomes ready only after all of its dependencies have completed,
  which models the data dependencies inside a collective algorithm (a chunk
  cannot be forwarded before it has been received / reduced).

The engine is array-backed (the PR 2 treatment applied to the simulator):

* routes are tuples of integer link ids, resolved through per-``(source,
  weight_size)`` shortest-path *trees* cached on the topology
  (:meth:`~repro.topology.topology.Topology.shortest_path_tree`) instead of
  one Dijkstra run per ``(source, dest, size)`` triple;
* per-link state (``link_next_free`` and the busy-interval / byte columns)
  is dense-array-indexed by the shared
  :meth:`~repro.topology.topology.Topology.link_arrays` link ids;
* dependency tracking (``missing_deps``, ``ready_time``, dependents) is
  dense-array-indexed over message positions, and the event heap holds
  ``(time, seq, pos)`` entries where ``pos`` is a flat (message, hop) slot
  into numpy-precomputed per-hop columns;
* busy intervals and byte counters are reconstructed vectorized after the
  loop into per-link columnar ``(starts, ends)`` arrays consumed directly by
  :class:`~repro.simulator.result.SimulationResult`'s vectorized sweeps.

Behaviour is byte-identical to the frozen pre-refactor engine
(:class:`repro.bench.reference.ReferenceSimulator`): same routes, same float
operations in the same order, same FCFS tie-breaking.  ``tacos-repro bench``
asserts this on every grid scenario.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import chain
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.kernels import NUMBA_AVAILABLE as _NUMBA_AVAILABLE
from repro.kernels.event_loop import event_loop as _event_loop_kernel
from repro.simulator.messages import Message, validate_messages
from repro.simulator.result import SimulationResult
from repro.topology.topology import Topology

__all__ = ["CongestionAwareSimulator"]

#: C-level attribute readers for the per-message setup columns.
_get_message_id = attrgetter("message_id")
_get_size = attrgetter("size")
_get_depends_on = attrgetter("depends_on")


class CongestionAwareSimulator:
    """Discrete-event network simulator with per-link FCFS queues.

    Parameters
    ----------
    topology:
        The physical network to simulate on.
    routing_message_size:
        Message size used to weight the shortest-path routing decision.
        ``None`` (the default) weights each hop by its cost for the actual
        message size, so latency-bound messages prefer short paths and
        bandwidth-bound messages prefer fast links.
    """

    def __init__(
        self,
        topology: Topology,
        routing_message_size: Optional[float] = None,
        *,
        use_kernel: Optional[bool] = None,
    ) -> None:
        self.topology = topology
        self.routing_message_size = routing_message_size
        #: Event-loop tier selection: ``None`` picks the native kernel when
        #: numba is installed and the Python loop otherwise; ``True`` forces
        #: the kernel (py-mode without numba — slow, used by the equivalence
        #: suites); ``False`` forces the Python loop.  Outputs are
        #: byte-identical either way (see :mod:`repro.kernels.event_loop`).
        self.use_kernel = use_kernel
        self._route_cache: Dict[Tuple[int, int, float], List[int]] = {}
        self._link_route_cache: Dict[Tuple[int, int, float], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, messages: Sequence[Message], *, collective_size: float = 0.0) -> SimulationResult:
        """Simulate ``messages`` and return timing plus per-link statistics.

        The hot loop works on flat *hop positions*: every (message, hop) pair
        gets one slot ``pos`` in per-hop columns precomputed with numpy
        (``hop_links``, ``hop_serialization`` = beta x size,
        ``hop_latency`` = alpha), so an event is just ``(time, seq, pos)``
        and the loop body is a handful of list reads.  Only ``(pos, start)``
        is recorded per transmission; ends, per-link grouping, and byte
        counters are reconstructed vectorized after the loop with the exact
        same float operands, keeping outputs byte-identical to the frozen
        reference engine.
        """
        messages = list(messages)
        validate_messages(messages)
        num_messages = len(messages)

        # Dense message indexing: message ids are arbitrary ints, positions
        # 0..n-1 follow input order (the same enumeration order the frozen
        # reference engine uses, which fixes FCFS tie-breaking).  Setup runs
        # through C-level iterators (attrgetter / map / chain) — per-message
        # Python bytecode here costs as much as the event loop itself on
        # 100k+ message workloads.  The adapters emit ids 0..n-1, so the
        # id -> position map collapses to identity on that common case.
        message_ids = list(map(_get_message_id, messages))
        identity_ids = message_ids == list(range(num_messages))
        index_of = (
            None if identity_ids else {mid: index for index, mid in enumerate(message_ids)}
        )
        sizes_arr = np.fromiter(map(_get_size, messages), dtype=np.float64, count=num_messages)
        dependency_sets = list(map(_get_depends_on, messages))
        missing_deps = list(map(len, dependency_sets))
        num_edges = sum(missing_deps)
        if identity_ids:
            dep_flat = np.fromiter(
                chain.from_iterable(dependency_sets), dtype=np.int64, count=num_edges
            )
        else:
            dep_flat = np.fromiter(
                (index_of[dep] for dep in chain.from_iterable(dependency_sets)),
                dtype=np.int64,
                count=num_edges,
            )
        routes = self._resolve_routes(messages)
        return self._execute(
            message_ids if not identity_ids else None,
            sizes_arr,
            missing_deps,
            dep_flat,
            routes,
            collective_size,
        )

    def run_flat(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        sizes,
        dep_indptr: Sequence[int],
        dep_indices: Sequence[int],
        *,
        collective_size: float = 0.0,
    ) -> SimulationResult:
        """Simulate a flat columnar workload without :class:`Message` objects.

        The columnar twin of :meth:`run`: message ``i`` is described by
        ``sources[i] -> dests[i]`` with payload ``sizes`` (a scalar for the
        common uniform-chunk case, or a per-message array) and dependencies
        ``dep_indices[dep_indptr[i]:dep_indptr[i + 1]]`` given as message
        *positions*.  Positions double as message ids in the returned
        :class:`SimulationResult`.  Behaviour — FCFS tie-breaking, float
        operation order, outputs — is identical to feeding :meth:`run` the
        equivalent ``Message`` list; the adapters derive these columns
        directly from a :class:`~repro.core.transfers.TransferTable` or
        :class:`~repro.simulator.schedule.LogicalSchedule`, skipping object
        construction on the hot path.
        """
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        dep_indptr = np.asarray(dep_indptr, dtype=np.int64)
        dep_flat = np.asarray(dep_indices, dtype=np.int64)
        num_messages = int(sources.shape[0])
        if np.isscalar(sizes):
            sizes_arr = np.full(num_messages, float(sizes))
        else:
            sizes_arr = np.asarray(sizes, dtype=np.float64)
        self._validate_flat(sources, dests, sizes_arr, dep_indptr, dep_flat)
        missing_deps = np.diff(dep_indptr).tolist()
        routes = self._resolve_routes_flat(sources, dests, sizes_arr)
        return self._execute(None, sizes_arr, missing_deps, dep_flat, routes, collective_size)

    def _validate_flat(
        self,
        sources: np.ndarray,
        dests: np.ndarray,
        sizes_arr: np.ndarray,
        dep_indptr: np.ndarray,
        dep_flat: np.ndarray,
    ) -> None:
        """Columnar mirror of :func:`~repro.simulator.messages.validate_messages`."""
        num_messages = int(sources.shape[0])
        if dests.shape[0] != num_messages or sizes_arr.shape[0] != num_messages:
            raise SimulationError("flat workload columns disagree in length")
        if dep_indptr.shape[0] != num_messages + 1 or (
            num_messages and int(dep_indptr[-1]) != dep_flat.shape[0]
        ):
            raise SimulationError("flat workload dependency CSR is malformed")
        degenerate = sources == dests
        if degenerate.any():
            index = int(np.flatnonzero(degenerate)[0])
            raise SimulationError(
                f"message {index} has identical source and dest {int(sources[index])}"
            )
        nonpositive = sizes_arr <= 0
        if nonpositive.any():
            index = int(np.flatnonzero(nonpositive)[0])
            raise SimulationError(
                f"message {index} has non-positive size {float(sizes_arr[index])}"
            )
        if dep_flat.size:
            if int(dep_flat.min()) < 0 or int(dep_flat.max()) >= num_messages:
                raise SimulationError("flat workload dependency references an unknown message")
            own = np.repeat(np.arange(num_messages, dtype=np.int64), np.diff(dep_indptr))
            selfdep = dep_flat == own
            if selfdep.any():
                index = int(own[np.flatnonzero(selfdep)[0]])
                raise SimulationError(f"message {index} depends on itself")

    def _execute(
        self,
        message_ids: Optional[List[int]],
        sizes_arr: np.ndarray,
        missing_deps: List[int],
        dep_flat: np.ndarray,
        routes: List[Tuple[int, ...]],
        collective_size: float,
    ) -> SimulationResult:
        """Shared event loop over flat hop columns (see :meth:`run`).

        ``message_ids`` is ``None`` when ids equal positions (the adapters'
        contract); ``dep_flat`` lists dependency positions consumer-major.
        """
        num_messages = sizes_arr.shape[0]
        arrays = self.topology.link_arrays()

        # Dependents CSR: edges stably sorted by dependency yield, per
        # dependency, its dependents in ascending position order — the same
        # lists the historical per-message append loop produced.
        num_edges = int(dep_flat.shape[0])
        if num_edges:
            consumer_of_edge = np.repeat(
                np.arange(num_messages, dtype=np.int64),
                np.asarray(missing_deps, dtype=np.int64),
            )
            edge_order = np.argsort(dep_flat, kind="stable")
            dependents_flat_arr = consumer_of_edge[edge_order]
            dependent_counts = np.bincount(dep_flat, minlength=num_messages)
            dependents_indptr_arr = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(dependent_counts))
            )
        else:
            dependents_flat_arr = np.empty(0, dtype=np.int64)
            dependents_indptr_arr = np.zeros(num_messages + 1, dtype=np.int64)

        # Flat per-hop columns, vectorized: position `pos` of message `index`
        # at hop `h` is offsets[index] + h; consecutive hops are consecutive
        # positions, so advancing a message is `pos + 1`.  A message's final
        # hop stores its link id bitwise-inverted (always negative), folding
        # the is-last-hop test into the link read the loop does anyway.
        route_lengths = np.fromiter(map(len, routes), dtype=np.int64, count=num_messages)
        offsets_arr = np.zeros(num_messages + 1, dtype=np.int64)
        np.cumsum(route_lengths, out=offsets_arr[1:])
        num_hops = int(offsets_arr[-1])
        hop_links_arr = np.fromiter(
            chain.from_iterable(routes), dtype=np.int64, count=num_hops
        )
        betas_arr = np.asarray(arrays.betas, dtype=float)
        alphas_arr = np.asarray(arrays.alphas, dtype=float)
        hop_sizes_arr = np.repeat(sizes_arr, route_lengths)
        hop_serialization_arr = betas_arr[hop_links_arr] * hop_sizes_arr
        last_positions = offsets_arr[1:] - 1
        signed_links_arr = hop_links_arr.copy()
        signed_links_arr[last_positions] = ~signed_links_arr[last_positions]
        hop_latency_arr = alphas_arr[hop_links_arr] if num_hops else np.empty(0)
        message_of_hop_arr = np.repeat(np.arange(num_messages, dtype=np.int64), route_lengths)

        use_kernel = self.use_kernel
        if use_kernel is None:
            use_kernel = _NUMBA_AVAILABLE
        if use_kernel:
            # Native tier: the same loop compiled over the same columns (see
            # repro.kernels.event_loop for the FCFS-equivalence argument).
            completion_arr, kernel_positions, kernel_starts, completed = _event_loop_kernel(
                signed_links_arr,
                hop_serialization_arr,
                hop_latency_arr,
                message_of_hop_arr,
                offsets_arr[:-1],
                np.asarray(missing_deps, dtype=np.int64),
                dependents_flat_arr,
                dependents_indptr_arr,
                len(arrays.alphas),
            )
            event_positions = kernel_positions
            event_starts = kernel_starts
            if completed != num_messages:
                never_ran = np.isnan(completion_arr)
                completion = [
                    None if missing else value
                    for value, missing in zip(completion_arr.tolist(), never_ran.tolist())
                ]
            else:
                completion = completion_arr.tolist()
        else:
            completion, event_positions, event_starts, completed = self._execute_python(
                num_messages,
                len(arrays.alphas),
                signed_links_arr.tolist(),
                hop_serialization_arr.tolist(),
                hop_latency_arr.tolist(),
                message_of_hop_arr.tolist(),
                offsets_arr[:-1].tolist(),
                missing_deps,
                dependents_flat_arr.tolist(),
                dependents_indptr_arr.tolist(),
            )

        if completed != num_messages:
            ids = message_ids if message_ids is not None else range(num_messages)
            unfinished = sorted(
                message_id
                for index, message_id in enumerate(ids)
                if completion[index] is None
            )
            raise SimulationError(
                f"{len(unfinished)} messages never became ready (dependency cycle?): {unfinished[:10]}"
            )

        if message_ids is None:
            message_completion = dict(enumerate(completion))
        else:
            message_completion = dict(zip(message_ids, completion))
        completion_time = max(message_completion.values()) if message_completion else 0.0
        busy_columns, link_bytes = self._collect_link_stats(
            arrays,
            event_positions,
            event_starts,
            hop_links_arr,
            hop_serialization_arr,
            hop_sizes_arr,
        )
        return SimulationResult(
            completion_time=completion_time,
            message_completion=message_completion,
            busy_columns=busy_columns,
            link_bytes=link_bytes,
            num_links=self.topology.num_links,
            collective_size=collective_size,
        )

    @staticmethod
    def _execute_python(
        num_messages: int,
        num_links: int,
        hop_links: List[int],
        hop_serialization: List[float],
        hop_latency: List[float],
        message_of_hop: List[int],
        first_pos: List[int],
        missing_deps: List[int],
        dependents_flat: List[int],
        dependents_indptr: List[int],
    ):
        """The pure-Python event loop (the kernel's equivalence oracle).

        Scalar access is fastest on plain lists of Python floats/ints, so the
        caller materializes the hop columns with ``tolist()`` for this path.
        Returns ``(completion, event_positions, event_starts, completed)``.
        """
        ready_time = [0.0] * num_messages
        link_next_free = [0.0] * num_links
        completion: List[Optional[float]] = [None] * num_messages
        # Busy intervals accumulate as flat (pos, start) pairs; everything
        # else about an interval is a pure function of pos.
        event_positions: List[int] = []
        event_starts: List[float] = []
        record_pos = event_positions.append
        record_start = event_starts.append

        # Event heap entries are (time, seq, pos): seq preserves push order
        # among equal times (FCFS tie-breaking identical to the reference
        # engine) and keeps comparisons from ever reaching pos.
        events: List[Tuple[float, int, int]] = []
        push = heappush
        pop = heappop
        seq = 0

        for index in range(num_messages):
            if missing_deps[index] == 0:
                push(events, (0.0, seq, first_pos[index]))
                seq += 1

        completed = 0
        while events:
            time, _, pos = pop(events)
            while True:
                link_id = hop_links[pos]
                if link_id >= 0:
                    next_free = link_next_free[link_id]
                    start = next_free if next_free > time else time
                    serialization_end = start + hop_serialization[pos]
                    link_next_free[link_id] = serialization_end
                    record_pos(pos)
                    record_start(start)
                    arrival = serialization_end + hop_latency[pos]
                    pos += 1
                    # Skip-heap fast path: if the next hop is strictly
                    # earlier than everything queued, pushing it would pop
                    # it right back (a strictly smaller key never ties, so
                    # sequence numbers cannot reorder it).  Processing it
                    # inline elides the push/pop pair without changing the
                    # event order.
                    if events and events[0][0] <= arrival:
                        push(events, (arrival, seq, pos))
                        seq += 1
                        break
                    time = arrival
                    continue

                # Final hop (negative-encoded link): the message is delivered.
                link_id = ~link_id
                next_free = link_next_free[link_id]
                start = next_free if next_free > time else time
                serialization_end = start + hop_serialization[pos]
                link_next_free[link_id] = serialization_end
                record_pos(pos)
                record_start(start)
                arrival = serialization_end + hop_latency[pos]
                index = message_of_hop[pos]
                completion[index] = arrival
                completed += 1
                for dependent in dependents_flat[
                    dependents_indptr[index] : dependents_indptr[index + 1]
                ]:
                    if arrival > ready_time[dependent]:
                        ready_time[dependent] = arrival
                    remaining = missing_deps[dependent] - 1
                    missing_deps[dependent] = remaining
                    if remaining == 0:
                        push(events, (ready_time[dependent], seq, first_pos[dependent]))
                        seq += 1
                break

        return completion, event_positions, event_starts, completed

    def _resolve_routes(self, messages: Sequence[Message]) -> List[Tuple[int, ...]]:
        """Per-message link-id routes, resolved through the route cache."""
        route_cache = self._link_route_cache
        weight_override = self.routing_message_size
        routes: List[Tuple[int, ...]] = []
        append = routes.append
        for message in messages:
            weight = message.size if weight_override is None else weight_override
            route = route_cache.get((message.source, message.dest, weight))
            if route is None:
                route = self._route_links(message)
            append(route)
        return routes

    @staticmethod
    def _collect_link_stats(
        arrays,
        event_positions: List[int],
        event_starts: List[float],
        hop_links_arr: np.ndarray,
        hop_serialization_arr: np.ndarray,
        hop_sizes_arr: np.ndarray,
    ):
        """Reconstruct per-link columnar intervals and byte counters.

        The loop recorded only ``(pos, start)``; the interval end is
        ``start + serialization[pos]`` with the identical float operands the
        loop used for ``link_next_free``, and the stable per-link grouping
        preserves chronological order, so byte counters accumulate in the
        same order (and therefore to the same floats) as the reference
        engine's sequential dict updates.
        """
        count = len(event_positions)
        if count == 0:
            return {}, {}
        # The loop hands lists; the kernel hands ready-made arrays.
        positions = np.asarray(event_positions, dtype=np.int64)
        starts = np.asarray(event_starts, dtype=float)
        ends = starts + hop_serialization_arr[positions]
        link_ids = hop_links_arr[positions]
        event_sizes = hop_sizes_arr[positions]
        order = np.argsort(link_ids, kind="stable")
        link_ids = link_ids[order]
        starts = starts[order]
        ends = ends[order]
        event_sizes = event_sizes[order]
        boundaries = np.flatnonzero(np.diff(link_ids)) + 1
        # ufunc.at is unbuffered and applies the adds in index order, which
        # after the stable sort is each link's chronological order — the same
        # left-to-right float accumulation as the reference engine's
        # sequential dict updates, and therefore the same values.
        byte_totals = np.zeros(len(arrays.alphas))
        np.add.at(byte_totals, link_ids, event_sizes)
        sources = arrays.sources
        dests = arrays.dests
        busy_columns = {}
        link_bytes = {}
        for group_links, group_starts, group_ends in zip(
            np.split(link_ids, boundaries),
            np.split(starts, boundaries),
            np.split(ends, boundaries),
        ):
            link_id = int(group_links[0])
            key = (sources[link_id], dests[link_id])
            busy_columns[key] = (group_starts, group_ends)
            link_bytes[key] = float(byte_totals[link_id])
        return busy_columns, link_bytes

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _weight_size(self, message: Message) -> float:
        if self.routing_message_size is not None:
            return self.routing_message_size
        return message.size

    def _route_links(self, message: Message) -> Tuple[int, ...]:
        """Shortest physical path for ``message`` as a tuple of link ids."""
        return self._route_links_pair(
            message.source, message.dest, self._weight_size(message), message.message_id
        )

    def _route_links_pair(
        self, source: int, dest: int, weight_size: float, message_id
    ) -> Tuple[int, ...]:
        """Link-id route for one ``(source, dest, weight)`` triple.

        Resolved through the topology's cached shortest-path tree for
        ``(source, weight_size)``; cached per endpoint pair and size.
        Degenerate (empty) routes raise without being stored, so a bad
        message cannot poison the cache for later messages sharing the same
        endpoint pair.
        """
        cache_key = (source, dest, weight_size)
        route = self._link_route_cache.get(cache_key)
        if route is None:
            if source == dest:
                raise SimulationError(
                    f"message {message_id} has a degenerate route [{source}]"
                )
            route = tuple(self.topology.shortest_path_links(source, dest, weight_size))
            if not route:
                raise SimulationError(
                    f"message {message_id} has a degenerate route {route}"
                )
            self._link_route_cache[cache_key] = route
        return route

    def _resolve_routes_flat(
        self, sources: np.ndarray, dests: np.ndarray, sizes_arr: np.ndarray
    ) -> List[Tuple[int, ...]]:
        """Per-message routes for a columnar workload, one Dijkstra per pair.

        For the uniform-weight case (a routing-size override, or all payloads
        equal — every adapter-produced workload) the distinct ``(source,
        dest)`` pairs are found with one ``np.unique`` and each pair is
        resolved once; the per-message route list is then a C-speed gather.
        """
        num_messages = int(sources.shape[0])
        if not num_messages:
            return []
        weight_override = self.routing_message_size
        uniform = weight_override is not None or bool((sizes_arr == sizes_arr[0]).all())
        if not uniform:
            return [
                self._route_links_pair(int(source), int(dest), float(size), index)
                for index, (source, dest, size) in enumerate(
                    zip(sources.tolist(), dests.tolist(), sizes_arr.tolist())
                )
            ]
        weight = float(weight_override if weight_override is not None else sizes_arr[0])
        stride = self.topology.num_npus
        codes = sources * stride + dests
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        first_of_code = np.zeros(unique_codes.shape[0], dtype=np.int64)
        first_of_code[inverse[::-1]] = np.arange(num_messages - 1, -1, -1, dtype=np.int64)
        pair_routes = [
            self._route_links_pair(code // stride, code % stride, weight, int(first))
            for code, first in zip(unique_codes.tolist(), first_of_code.tolist())
        ]
        return [pair_routes[group] for group in inverse.tolist()]

    def _route(self, message: Message) -> List[int]:
        """Shortest physical path for ``message`` as NPU indices (cached).

        Kept for callers and tests that inspect routes; the hot path works on
        :meth:`_route_links` link ids.
        """
        weight_size = self._weight_size(message)
        cache_key = (message.source, message.dest, weight_size)
        route = self._route_cache.get(cache_key)
        if route is None:
            link_route = self._route_links(message)
            dests = self.topology.link_arrays().dests
            route = [message.source] + [dests[link_id] for link_id in link_route]
            self._route_cache[cache_key] = route
        return route
