"""Congestion-aware analytical network simulator (Sec. V-C).

The simulator reproduces the behaviour of the paper's analytical backend:

* every message is routed over a shortest path of physical links
  (store-and-forward: a hop starts only after the previous one completes);
* every link has a message queue and transmits **one message at a time** in
  first-come, first-served order, so contending messages serialize — this is
  the first-order congestion model that exposes the oversubscription of
  topology-unaware collectives;
* a link is occupied for the serialization term of the alpha-beta model
  (``beta * size``); the latency term ``alpha`` is propagation delay, so it
  adds to the message's arrival time but does not block the next message —
  small latency-bound messages therefore pipeline over a link, which is what
  makes the Direct algorithm win for tiny collectives (Fig. 2b);
* a message becomes ready only after all of its dependencies have completed,
  which models the data dependencies inside a collective algorithm (a chunk
  cannot be forwarded before it has been received / reduced).

The engine is array-backed (the PR 2 treatment applied to the simulator):

* routes are tuples of integer link ids, resolved through per-``(source,
  weight_size)`` shortest-path *trees* cached on the topology
  (:meth:`~repro.topology.topology.Topology.shortest_path_tree`) instead of
  one Dijkstra run per ``(source, dest, size)`` triple;
* per-link state (``link_next_free`` and the busy-interval / byte columns)
  is dense-array-indexed by the shared
  :meth:`~repro.topology.topology.Topology.link_arrays` link ids;
* dependency tracking (``missing_deps``, ``ready_time``, dependents) is
  dense-array-indexed over message positions, and the event heap holds
  ``(time, seq, pos)`` entries where ``pos`` is a flat (message, hop) slot
  into numpy-precomputed per-hop columns;
* busy intervals and byte counters are reconstructed vectorized after the
  loop into per-link columnar ``(starts, ends)`` arrays consumed directly by
  :class:`~repro.simulator.result.SimulationResult`'s vectorized sweeps.

Behaviour is byte-identical to the frozen pre-refactor engine
(:class:`repro.bench.reference.ReferenceSimulator`): same routes, same float
operations in the same order, same FCFS tie-breaking.  ``tacos-repro bench``
asserts this on every grid scenario.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import chain
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator.messages import Message, validate_messages
from repro.simulator.result import SimulationResult
from repro.topology.topology import Topology

__all__ = ["CongestionAwareSimulator"]

#: C-level attribute readers for the per-message setup columns.
_get_message_id = attrgetter("message_id")
_get_size = attrgetter("size")
_get_depends_on = attrgetter("depends_on")


class CongestionAwareSimulator:
    """Discrete-event network simulator with per-link FCFS queues.

    Parameters
    ----------
    topology:
        The physical network to simulate on.
    routing_message_size:
        Message size used to weight the shortest-path routing decision.
        ``None`` (the default) weights each hop by its cost for the actual
        message size, so latency-bound messages prefer short paths and
        bandwidth-bound messages prefer fast links.
    """

    def __init__(self, topology: Topology, routing_message_size: Optional[float] = None) -> None:
        self.topology = topology
        self.routing_message_size = routing_message_size
        self._route_cache: Dict[Tuple[int, int, float], List[int]] = {}
        self._link_route_cache: Dict[Tuple[int, int, float], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, messages: Sequence[Message], *, collective_size: float = 0.0) -> SimulationResult:
        """Simulate ``messages`` and return timing plus per-link statistics.

        The hot loop works on flat *hop positions*: every (message, hop) pair
        gets one slot ``pos`` in per-hop columns precomputed with numpy
        (``hop_links``, ``hop_serialization`` = beta x size,
        ``hop_latency`` = alpha), so an event is just ``(time, seq, pos)``
        and the loop body is a handful of list reads.  Only ``(pos, start)``
        is recorded per transmission; ends, per-link grouping, and byte
        counters are reconstructed vectorized after the loop with the exact
        same float operands, keeping outputs byte-identical to the frozen
        reference engine.
        """
        messages = list(messages)
        validate_messages(messages)
        num_messages = len(messages)
        arrays = self.topology.link_arrays()

        # Dense message indexing: message ids are arbitrary ints, positions
        # 0..n-1 follow input order (the same enumeration order the frozen
        # reference engine uses, which fixes FCFS tie-breaking).  Setup runs
        # through C-level iterators (attrgetter / map / chain) — per-message
        # Python bytecode here costs as much as the event loop itself on
        # 100k+ message workloads.  The adapters emit ids 0..n-1, so the
        # id -> position map collapses to identity on that common case.
        message_ids = list(map(_get_message_id, messages))
        identity_ids = message_ids == list(range(num_messages))
        index_of = (
            None if identity_ids else {mid: index for index, mid in enumerate(message_ids)}
        )
        sizes = list(map(_get_size, messages))
        dependency_sets = list(map(_get_depends_on, messages))
        missing_deps = list(map(len, dependency_sets))
        dependents: List[List[int]] = [[] for _ in range(num_messages)]
        if identity_ids:
            for index, depends_on in enumerate(dependency_sets):
                if depends_on:
                    for dep in depends_on:
                        dependents[dep].append(index)
        else:
            for index, depends_on in enumerate(dependency_sets):
                if depends_on:
                    for dep in depends_on:
                        dependents[index_of[dep]].append(index)

        routes = self._resolve_routes(messages)

        # Flat per-hop columns, vectorized: position `pos` of message `index`
        # at hop `h` is offsets[index] + h; consecutive hops are consecutive
        # positions, so advancing a message is `pos + 1`.  A message's final
        # hop stores its link id bitwise-inverted (always negative), folding
        # the is-last-hop test into the link read the loop does anyway.
        route_lengths = np.fromiter(map(len, routes), dtype=np.int64, count=num_messages)
        offsets_arr = np.zeros(num_messages + 1, dtype=np.int64)
        np.cumsum(route_lengths, out=offsets_arr[1:])
        num_hops = int(offsets_arr[-1])
        hop_links_arr = np.fromiter(
            chain.from_iterable(routes), dtype=np.int64, count=num_hops
        )
        betas_arr = np.asarray(arrays.betas, dtype=float)
        alphas_arr = np.asarray(arrays.alphas, dtype=float)
        hop_sizes_arr = np.repeat(np.asarray(sizes, dtype=float), route_lengths)
        hop_serialization_arr = betas_arr[hop_links_arr] * hop_sizes_arr
        last_positions = offsets_arr[1:] - 1
        signed_links_arr = hop_links_arr.copy()
        signed_links_arr[last_positions] = ~signed_links_arr[last_positions]
        # Scalar access in the loop is fastest on plain lists of Python
        # floats/ints, so the columns are materialized once with tolist().
        hop_links = signed_links_arr.tolist()
        hop_serialization = hop_serialization_arr.tolist()
        hop_latency = alphas_arr[hop_links_arr].tolist() if num_hops else []
        message_of_hop = np.repeat(
            np.arange(num_messages, dtype=np.int64), route_lengths
        ).tolist()
        first_pos = offsets_arr[:-1].tolist()

        ready_time = [0.0] * num_messages
        link_next_free = [0.0] * len(arrays.alphas)
        completion: List[Optional[float]] = [None] * num_messages
        # Busy intervals accumulate as flat (pos, start) pairs; everything
        # else about an interval is a pure function of pos.
        event_positions: List[int] = []
        event_starts: List[float] = []
        record_pos = event_positions.append
        record_start = event_starts.append

        # Event heap entries are (time, seq, pos): seq preserves push order
        # among equal times (FCFS tie-breaking identical to the reference
        # engine) and keeps comparisons from ever reaching pos.
        events: List[Tuple[float, int, int]] = []
        push = heappush
        pop = heappop
        seq = 0

        for index in range(num_messages):
            if missing_deps[index] == 0:
                push(events, (0.0, seq, first_pos[index]))
                seq += 1

        completed = 0
        while events:
            time, _, pos = pop(events)
            while True:
                link_id = hop_links[pos]
                if link_id >= 0:
                    next_free = link_next_free[link_id]
                    start = next_free if next_free > time else time
                    serialization_end = start + hop_serialization[pos]
                    link_next_free[link_id] = serialization_end
                    record_pos(pos)
                    record_start(start)
                    arrival = serialization_end + hop_latency[pos]
                    pos += 1
                    # Skip-heap fast path: if the next hop is strictly
                    # earlier than everything queued, pushing it would pop
                    # it right back (a strictly smaller key never ties, so
                    # sequence numbers cannot reorder it).  Processing it
                    # inline elides the push/pop pair without changing the
                    # event order.
                    if events and events[0][0] <= arrival:
                        push(events, (arrival, seq, pos))
                        seq += 1
                        break
                    time = arrival
                    continue

                # Final hop (negative-encoded link): the message is delivered.
                link_id = ~link_id
                next_free = link_next_free[link_id]
                start = next_free if next_free > time else time
                serialization_end = start + hop_serialization[pos]
                link_next_free[link_id] = serialization_end
                record_pos(pos)
                record_start(start)
                arrival = serialization_end + hop_latency[pos]
                index = message_of_hop[pos]
                completion[index] = arrival
                completed += 1
                for dependent in dependents[index]:
                    if arrival > ready_time[dependent]:
                        ready_time[dependent] = arrival
                    remaining = missing_deps[dependent] - 1
                    missing_deps[dependent] = remaining
                    if remaining == 0:
                        push(events, (ready_time[dependent], seq, first_pos[dependent]))
                        seq += 1
                break

        if completed != num_messages:
            unfinished = sorted(
                messages[index].message_id
                for index in range(num_messages)
                if completion[index] is None
            )
            raise SimulationError(
                f"{len(unfinished)} messages never became ready (dependency cycle?): {unfinished[:10]}"
            )

        message_completion = dict(zip(message_ids, completion))
        completion_time = max(message_completion.values()) if message_completion else 0.0
        busy_columns, link_bytes = self._collect_link_stats(
            arrays,
            event_positions,
            event_starts,
            hop_links_arr,
            hop_serialization_arr,
            hop_sizes_arr,
        )
        return SimulationResult(
            completion_time=completion_time,
            message_completion=message_completion,
            busy_columns=busy_columns,
            link_bytes=link_bytes,
            num_links=self.topology.num_links,
            collective_size=collective_size,
        )

    def _resolve_routes(self, messages: Sequence[Message]) -> List[Tuple[int, ...]]:
        """Per-message link-id routes, resolved through the route cache."""
        route_cache = self._link_route_cache
        weight_override = self.routing_message_size
        routes: List[Tuple[int, ...]] = []
        append = routes.append
        for message in messages:
            weight = message.size if weight_override is None else weight_override
            route = route_cache.get((message.source, message.dest, weight))
            if route is None:
                route = self._route_links(message)
            append(route)
        return routes

    @staticmethod
    def _collect_link_stats(
        arrays,
        event_positions: List[int],
        event_starts: List[float],
        hop_links_arr: np.ndarray,
        hop_serialization_arr: np.ndarray,
        hop_sizes_arr: np.ndarray,
    ):
        """Reconstruct per-link columnar intervals and byte counters.

        The loop recorded only ``(pos, start)``; the interval end is
        ``start + serialization[pos]`` with the identical float operands the
        loop used for ``link_next_free``, and the stable per-link grouping
        preserves chronological order, so byte counters accumulate in the
        same order (and therefore to the same floats) as the reference
        engine's sequential dict updates.
        """
        count = len(event_positions)
        if count == 0:
            return {}, {}
        positions = np.fromiter(event_positions, dtype=np.int64, count=count)
        starts = np.fromiter(event_starts, dtype=float, count=count)
        ends = starts + hop_serialization_arr[positions]
        link_ids = hop_links_arr[positions]
        event_sizes = hop_sizes_arr[positions]
        order = np.argsort(link_ids, kind="stable")
        link_ids = link_ids[order]
        starts = starts[order]
        ends = ends[order]
        event_sizes = event_sizes[order]
        boundaries = np.flatnonzero(np.diff(link_ids)) + 1
        # ufunc.at is unbuffered and applies the adds in index order, which
        # after the stable sort is each link's chronological order — the same
        # left-to-right float accumulation as the reference engine's
        # sequential dict updates, and therefore the same values.
        byte_totals = np.zeros(len(arrays.alphas))
        np.add.at(byte_totals, link_ids, event_sizes)
        sources = arrays.sources
        dests = arrays.dests
        busy_columns = {}
        link_bytes = {}
        for group_links, group_starts, group_ends in zip(
            np.split(link_ids, boundaries),
            np.split(starts, boundaries),
            np.split(ends, boundaries),
        ):
            link_id = int(group_links[0])
            key = (sources[link_id], dests[link_id])
            busy_columns[key] = (group_starts, group_ends)
            link_bytes[key] = float(byte_totals[link_id])
        return busy_columns, link_bytes

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _weight_size(self, message: Message) -> float:
        if self.routing_message_size is not None:
            return self.routing_message_size
        return message.size

    def _route_links(self, message: Message) -> Tuple[int, ...]:
        """Shortest physical path for ``message`` as a tuple of link ids.

        Resolved through the topology's cached shortest-path tree for
        ``(message.source, weight_size)``; cached per endpoint pair and size.
        Degenerate (empty) routes raise without being stored, so a bad
        message cannot poison the cache for later messages sharing the same
        endpoint pair.
        """
        weight_size = self._weight_size(message)
        cache_key = (message.source, message.dest, weight_size)
        route = self._link_route_cache.get(cache_key)
        if route is None:
            if message.source == message.dest:
                raise SimulationError(
                    f"message {message.message_id} has a degenerate route [{message.source}]"
                )
            route = tuple(
                self.topology.shortest_path_links(
                    message.source, message.dest, weight_size
                )
            )
            if not route:
                raise SimulationError(
                    f"message {message.message_id} has a degenerate route {route}"
                )
            self._link_route_cache[cache_key] = route
        return route

    def _route(self, message: Message) -> List[int]:
        """Shortest physical path for ``message`` as NPU indices (cached).

        Kept for callers and tests that inspect routes; the hot path works on
        :meth:`_route_links` link ids.
        """
        weight_size = self._weight_size(message)
        cache_key = (message.source, message.dest, weight_size)
        route = self._route_cache.get(cache_key)
        if route is None:
            link_route = self._route_links(message)
            dests = self.topology.link_arrays().dests
            route = [message.source] + [dests[link_id] for link_id in link_route]
            self._route_cache[cache_key] = route
        return route
