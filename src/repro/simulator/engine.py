"""Congestion-aware analytical network simulator (Sec. V-C).

The simulator reproduces the behaviour of the paper's analytical backend:

* every message is routed over a shortest path of physical links
  (store-and-forward: a hop starts only after the previous one completes);
* every link has a message queue and transmits **one message at a time** in
  first-come, first-served order, so contending messages serialize — this is
  the first-order congestion model that exposes the oversubscription of
  topology-unaware collectives;
* a link is occupied for the serialization term of the alpha-beta model
  (``beta * size``); the latency term ``alpha`` is propagation delay, so it
  adds to the message's arrival time but does not block the next message —
  small latency-bound messages therefore pipeline over a link, which is what
  makes the Direct algorithm win for tiny collectives (Fig. 2b);
* a message becomes ready only after all of its dependencies have completed,
  which models the data dependencies inside a collective algorithm (a chunk
  cannot be forwarded before it has been received / reduced).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.simulator.messages import Message, validate_messages
from repro.simulator.result import SimulationResult
from repro.topology.topology import Topology

__all__ = ["CongestionAwareSimulator"]


class CongestionAwareSimulator:
    """Discrete-event network simulator with per-link FCFS queues.

    Parameters
    ----------
    topology:
        The physical network to simulate on.
    routing_message_size:
        Message size used to weight the shortest-path routing decision.
        ``None`` (the default) weights each hop by its cost for the actual
        message size, so latency-bound messages prefer short paths and
        bandwidth-bound messages prefer fast links.
    """

    def __init__(self, topology: Topology, routing_message_size: Optional[float] = None) -> None:
        self.topology = topology
        self.routing_message_size = routing_message_size
        self._route_cache: Dict[Tuple[int, int, float], List[int]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, messages: Sequence[Message], *, collective_size: float = 0.0) -> SimulationResult:
        """Simulate ``messages`` and return timing plus per-link statistics."""
        messages = list(messages)
        validate_messages(messages)
        by_id = {message.message_id: message for message in messages}

        dependents: Dict[int, List[int]] = {message.message_id: [] for message in messages}
        missing_deps: Dict[int, int] = {}
        ready_time: Dict[int, float] = {}
        for message in messages:
            missing_deps[message.message_id] = len(message.depends_on)
            ready_time[message.message_id] = 0.0
            for dep in message.depends_on:
                dependents[dep].append(message.message_id)

        routes = {message.message_id: self._route(message) for message in messages}

        link_next_free: Dict[Tuple[int, int], float] = {key: 0.0 for key in self.topology.link_keys()}
        link_busy_intervals: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
        link_bytes: Dict[Tuple[int, int], float] = {}
        message_completion: Dict[int, float] = {}

        counter = itertools.count()
        # Event: (time, sequence, message_id, hop_index). A hop event means the
        # message is ready to *enter* the queue of its ``hop_index``-th link.
        events: List[Tuple[float, int, int, int]] = []

        def schedule_hop(message_id: int, hop_index: int, time: float) -> None:
            heapq.heappush(events, (time, next(counter), message_id, hop_index))

        for message in messages:
            if missing_deps[message.message_id] == 0:
                schedule_hop(message.message_id, 0, 0.0)

        completed = 0
        while events:
            time, _, message_id, hop_index = heapq.heappop(events)
            message = by_id[message_id]
            route = routes[message_id]
            link_key = (route[hop_index], route[hop_index + 1])
            link = self.topology.link(*link_key)

            start = max(time, link_next_free[link_key])
            serialization_end = start + link.beta * message.size
            arrival = serialization_end + link.alpha
            link_next_free[link_key] = serialization_end
            link_busy_intervals.setdefault(link_key, []).append((start, serialization_end))
            link_bytes[link_key] = link_bytes.get(link_key, 0.0) + message.size

            if hop_index + 1 < len(route) - 1:
                schedule_hop(message_id, hop_index + 1, arrival)
                continue

            # Final hop: the message is delivered.
            message_completion[message_id] = arrival
            completed += 1
            for dependent_id in dependents[message_id]:
                ready_time[dependent_id] = max(ready_time[dependent_id], arrival)
                missing_deps[dependent_id] -= 1
                if missing_deps[dependent_id] == 0:
                    schedule_hop(dependent_id, 0, ready_time[dependent_id])

        if completed != len(messages):
            unfinished = sorted(set(by_id) - set(message_completion))
            raise SimulationError(
                f"{len(unfinished)} messages never became ready (dependency cycle?): {unfinished[:10]}"
            )

        completion_time = max(message_completion.values()) if message_completion else 0.0
        return SimulationResult(
            completion_time=completion_time,
            message_completion=message_completion,
            link_busy_intervals=link_busy_intervals,
            link_bytes=link_bytes,
            num_links=self.topology.num_links,
            collective_size=collective_size,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, message: Message) -> List[int]:
        """Shortest physical path for ``message`` (cached per endpoint pair and size).

        Routes are validated *before* they enter the cache: a degenerate
        (fewer than two hop) route raises without being stored, so a bad
        message cannot poison the cache for later messages sharing the same
        endpoint pair.
        """
        weight_size = self.routing_message_size if self.routing_message_size is not None else message.size
        cache_key = (message.source, message.dest, weight_size)
        route = self._route_cache.get(cache_key)
        if route is None:
            route = self.topology.shortest_path(message.source, message.dest, weight_size)
            if len(route) < 2:
                raise SimulationError(
                    f"message {message.message_id} has a degenerate route {route}"
                )
            self._route_cache[cache_key] = route
        return route
