"""Message-level workload representation for the network simulator.

The congestion-aware backend (Sec. V-C) simulates *messages*: point-to-point
transfers of one chunk between two NPUs that may be several hops apart.  A
message becomes ready once all of its dependencies have completed, then
traverses its route link by link (store-and-forward), queueing FCFS behind
other messages on every link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One point-to-point chunk transfer submitted to the simulator.

    Attributes
    ----------
    message_id:
        Unique identifier; dependencies reference these ids.
    source, dest:
        Endpoint NPUs.  They do not need to be physically adjacent — the
        simulator routes the message over a shortest path.
    size:
        Payload size in bytes.
    chunk:
        The chunk this message carries (used for reporting only).
    depends_on:
        Ids of messages that must complete before this one may start.
    """

    message_id: int
    source: int
    dest: int
    size: float
    chunk: int = 0
    depends_on: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise SimulationError(f"message {self.message_id} has identical source and dest {self.source}")
        if self.size <= 0:
            raise SimulationError(f"message {self.message_id} has non-positive size {self.size}")
        if self.message_id in self.depends_on:
            raise SimulationError(f"message {self.message_id} depends on itself")


def validate_messages(messages: Sequence[Message]) -> None:
    """Check ids are unique and dependencies reference existing messages."""
    ids = set()
    for message in messages:
        if message.message_id in ids:
            raise SimulationError(f"duplicate message id {message.message_id}")
        ids.add(message.message_id)
    for message in messages:
        unknown = message.depends_on - ids
        if unknown:
            raise SimulationError(
                f"message {message.message_id} depends on unknown messages {sorted(unknown)}"
            )
