"""Semantic checking of logical collective schedules.

A :class:`~repro.simulator.schedule.LogicalSchedule` describes *which* chunk
moves *where* at every step, but its correctness as a collective (does every
NPU end with the fully reduced buffer?) is a dataflow property.  This module
replays a schedule symbolically, tracking for every (NPU, chunk) the set of
NPUs whose partial contributions are folded into that copy:

* initially every NPU's copy of every chunk contains only its own partial;
* a send transmits the sender's current contribution set;
* a receive either *accumulates* (if the received set is disjoint from the
  local one — a reduction) or *replaces* (if the received set is a superset —
  forwarding an already-reduced value).  Any other overlap would double-count
  a contribution and is rejected.

The checkers are used by the test suite to prove that every baseline
(Ring, Direct, RHD, DBT, BlueConnect, Themis, MultiTree, C-Cube, TACCL-like)
implements its collective correctly, independent of timing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import VerificationError
from repro.simulator.schedule import LogicalSchedule

__all__ = [
    "check_all_reduce_schedule",
    "check_all_gather_schedule",
    "replay_contributions",
]


def replay_contributions(schedule: LogicalSchedule) -> Dict[Tuple[int, int], Set[int]]:
    """Replay a schedule and return the final contribution set per (NPU, chunk).

    Chunks are grouped into buffer *blocks* of ``chunks_per_npu`` sub-chunks
    (the convention every schedule builder in this library follows); each
    NPU's initial copy of every chunk contains only its own contribution.

    Raises
    ------
    VerificationError
        If a receive would double-count a contribution (overlapping,
        non-superset merge), which indicates an incorrect reduction schedule.
    """
    schedule.validate()
    chunks = sorted({send.chunk for send in schedule.sends})
    contributions: Dict[Tuple[int, int], Set[int]] = {}
    for npu in range(schedule.num_npus):
        for chunk in chunks:
            contributions[(npu, chunk)] = {npu}

    for step, step_sends in schedule.steps():
        # Sends at a step observe the state before any receive of that step.
        transmitted = [
            (send, frozenset(contributions[(send.source, send.chunk)])) for send in step_sends
        ]
        for send, payload in transmitted:
            local = contributions[(send.dest, send.chunk)]
            if payload >= local:
                contributions[(send.dest, send.chunk)] = set(payload)
            elif payload.isdisjoint(local):
                contributions[(send.dest, send.chunk)] = local | payload
            else:
                raise VerificationError(
                    f"step {step}: NPU {send.dest} would double-count contributions "
                    f"{sorted(payload & local)} of chunk {send.chunk} received from {send.source}"
                )
    return contributions


def check_all_reduce_schedule(schedule: LogicalSchedule) -> bool:
    """Check that a schedule implements a correct All-Reduce.

    Every NPU must end with every chunk's contribution set equal to the full
    NPU set (i.e. the fully reduced value of every buffer block).
    """
    contributions = replay_contributions(schedule)
    everyone = set(range(schedule.num_npus))
    chunks = sorted({send.chunk for send in schedule.sends})
    for npu in range(schedule.num_npus):
        for chunk in chunks:
            final = contributions[(npu, chunk)]
            if final != everyone:
                raise VerificationError(
                    f"All-Reduce incomplete: NPU {npu} ends with contributions {sorted(final)} "
                    f"of chunk {chunk} instead of all {schedule.num_npus} NPUs"
                )
    return True


def check_all_gather_schedule(schedule: LogicalSchedule, chunks_per_npu: int = 1) -> bool:
    """Check that a schedule implements a correct All-Gather.

    Every NPU must receive every other NPU's blocks, and a chunk may only be
    forwarded by an NPU that already holds it (its owner, or a prior
    receiver at an earlier step).
    """
    schedule.validate()
    holdings: List[Set[int]] = [set() for _ in range(schedule.num_npus)]
    total_chunks = schedule.num_npus * chunks_per_npu
    for npu in range(schedule.num_npus):
        for sub in range(chunks_per_npu):
            holdings[npu].add(npu * chunks_per_npu + sub)

    for step, step_sends in schedule.steps():
        for send in step_sends:
            if send.chunk not in holdings[send.source]:
                raise VerificationError(
                    f"step {step}: NPU {send.source} forwards chunk {send.chunk} before holding it"
                )
        for send in step_sends:
            holdings[send.dest].add(send.chunk)

    expected = set(range(total_chunks))
    for npu in range(schedule.num_npus):
        missing = expected - holdings[npu]
        if missing:
            raise VerificationError(
                f"All-Gather incomplete: NPU {npu} is missing chunks {sorted(missing)}"
            )
    return True
