"""Simulation results and derived network metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one network simulation run.

    Attributes
    ----------
    completion_time:
        Time at which the last message was fully delivered (seconds).
    message_completion:
        Per-message delivery time, keyed by message id.
    link_busy_intervals:
        Per-link list of (start, end) busy windows, in start order.
    link_bytes:
        Total payload bytes that crossed each link.
    num_links:
        Number of directed links in the simulated topology.
    collective_size:
        Per-NPU collective size in bytes (0 when simulating raw messages),
        used to report collective bandwidth.
    """

    completion_time: float
    message_completion: Dict[int, float]
    link_busy_intervals: Dict[Tuple[int, int], List[Tuple[float, float]]]
    link_bytes: Dict[Tuple[int, int], float]
    num_links: int
    collective_size: float = 0.0

    # ------------------------------------------------------------------
    # Collective-level metrics
    # ------------------------------------------------------------------
    def collective_bandwidth(self) -> float:
        """All-Reduce-style bandwidth: collective size divided by completion time."""
        if self.collective_size <= 0:
            raise SimulationError("collective_size was not set on this result")
        if self.completion_time <= 0:
            return float("inf")
        return self.collective_size / self.completion_time

    # ------------------------------------------------------------------
    # Per-link metrics
    # ------------------------------------------------------------------
    def link_busy_time(self) -> Dict[Tuple[int, int], float]:
        """Total busy seconds per link."""
        return {
            link: sum(end - start for start, end in intervals)
            for link, intervals in self.link_busy_intervals.items()
        }

    def per_link_utilization(self) -> Dict[Tuple[int, int], float]:
        """Busy fraction of each link over the whole run."""
        if self.completion_time <= 0:
            return {link: 0.0 for link in self.link_busy_intervals}
        return {
            link: busy / self.completion_time
            for link, busy in self.link_busy_time().items()
        }

    def average_link_utilization(self) -> float:
        """Mean busy fraction across all links (the Fig. 15(b) quantity)."""
        if self.num_links == 0 or self.completion_time <= 0:
            return 0.0
        total_busy = sum(self.link_busy_time().values())
        return total_busy / (self.num_links * self.completion_time)

    def normalized_link_loads(self) -> Dict[Tuple[int, int], float]:
        """Per-link bytes normalized by the maximum (the Fig. 1 heat-map values)."""
        if not self.link_bytes:
            return {}
        peak = max(self.link_bytes.values())
        if peak <= 0:
            return {link: 0.0 for link in self.link_bytes}
        return {link: load / peak for link, load in self.link_bytes.items()}

    # ------------------------------------------------------------------
    # Time series
    # ------------------------------------------------------------------
    def utilization_timeline(self, num_samples: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """Fraction of links busy over time (the Fig. 16(b) / Fig. 18 series).

        Returns ``(times, utilization)`` arrays of length ``num_samples``.
        """
        if num_samples < 1:
            raise SimulationError(f"num_samples must be positive, got {num_samples}")
        horizon = self.completion_time
        times = np.linspace(0.0, horizon, num_samples) if horizon > 0 else np.zeros(num_samples)
        utilization = np.zeros(num_samples)
        if self.num_links == 0 or horizon <= 0:
            return times, utilization
        for intervals in self.link_busy_intervals.values():
            for start, end in intervals:
                busy = (times >= start) & (times < end)
                utilization[busy] += 1.0
        utilization /= self.num_links
        return times, utilization

    def busy_link_count_at(self, time: float) -> int:
        """Number of links transmitting at ``time``."""
        count = 0
        for intervals in self.link_busy_intervals.values():
            for start, end in intervals:
                if start <= time < end:
                    count += 1
                    break
        return count
