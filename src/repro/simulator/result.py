"""Simulation results and derived network metrics.

Busy intervals are stored *columnar*: per link, one array of interval start
times and one of end times, in transmission order.  All time-series metrics
(:meth:`SimulationResult.utilization_timeline`, :meth:`link_busy_time`,
:meth:`busy_link_count_at`) run as vectorized event sweeps over those columns
instead of nested Python loops, which keeps them cheap even for the 100k+
message workloads of the ``sim_stress`` benchmark grid.

Zero-width intervals (``start == end``, produced by pure-latency ``beta == 0``
links) are *instantaneous transmissions*: they carry bytes but occupy the link
for zero time.  They are counted at their sample point by the sweeps rather
than silently dropped.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["SimulationResult", "sweep_busy_link_counts"]

#: Magic prefix + version byte of the :meth:`SimulationResult.to_bytes` format.
_BYTES_MAGIC = b"TACOSSR1"
#: Fixed header layout after the magic: completion time, link count,
#: collective size, then the four array counts.
_HEADER = struct.Struct("<dqdQQQQ")

_LinkKey = Tuple[int, int]
#: Columnar busy intervals: per link, parallel (starts, ends) sequences.
_Columns = Dict[_LinkKey, Tuple[np.ndarray, np.ndarray]]


def sweep_busy_link_counts(times: np.ndarray, columns: _Columns) -> np.ndarray:
    """Number of links busy at each sample time (vectorized event sweep).

    ``times`` must be sorted ascending; ``columns`` maps each link to its
    parallel ``(starts, ends)`` interval arrays.  An interval ``[start, end)``
    covers a sample ``t`` when ``start <= t < end`` (the historical
    semantics); because a link's intervals never overlap, at most one of its
    positive-width intervals covers any sample, so a flat additive sweep over
    all links yields the per-sample *link* count directly.

    A zero-width interval (``start == end``) covers no half-open range; its
    link is instead counted busy at the interval's sample point — the last
    sample ``<= start`` (clamped to the first sample) — so instantaneous
    transmissions over pure-latency links remain visible in Fig. 16(b)-style
    plots.  Instants are deduplicated per (link, sample) and skipped where
    the same link already has positive-width coverage, so a link never
    counts more than once per sample and the busy fraction stays <= 1.
    """
    times = np.asarray(times, dtype=float)
    counts = np.zeros(times.shape, dtype=float)
    if not columns:
        return counts
    num_samples = len(times)
    all_starts = np.concatenate([pair[0] for pair in columns.values()])
    all_ends = np.concatenate([pair[1] for pair in columns.values()])
    if all_starts.size == 0:
        return counts
    # #{start <= t} - #{end <= t} == #{start <= t < end}: zero-width
    # intervals cancel out of the difference, which is exactly why the naive
    # sweep dropped them — their links are re-counted per sample below.
    counts += np.searchsorted(np.sort(all_starts), times, side="right")
    counts -= np.searchsorted(np.sort(all_ends), times, side="right")
    if not np.any(all_starts == all_ends):
        return counts
    for starts, ends in columns.values():
        zero_width = starts == ends
        if not zero_width.any():
            continue
        bins = np.searchsorted(times, starts[zero_width], side="right") - 1
        np.clip(bins, 0, num_samples - 1, out=bins)
        bins = np.unique(bins)
        wide_starts = starts[~zero_width]
        if wide_starts.size:
            # Drop bins where this link is already counted via a
            # positive-width interval covering the sample.
            wide_ends = ends[~zero_width]
            covered = (
                np.searchsorted(np.sort(wide_starts), times[bins], side="right")
                - np.searchsorted(np.sort(wide_ends), times[bins], side="right")
            ) > 0
            bins = bins[~covered]
        counts[bins] += 1.0
    return counts


class SimulationResult:
    """Outcome of one network simulation run.

    Attributes
    ----------
    completion_time:
        Time at which the last message was fully delivered (seconds).
    message_completion:
        Per-message delivery time, keyed by message id.
    link_busy_intervals:
        Per-link list of (start, end) busy windows, in start order
        (materialized lazily from the columnar storage).
    link_bytes:
        Total payload bytes that crossed each link.
    num_links:
        Number of directed links in the simulated topology.
    collective_size:
        Per-NPU collective size in bytes (0 when simulating raw messages),
        used to report collective bandwidth.

    Constructors may pass busy windows either as ``link_busy_intervals``
    (dict of (start, end) tuple lists — the historical shape, used by the
    frozen reference simulator) or as ``busy_columns`` (dict of parallel
    ``(starts, ends)`` sequences — the array engine's native shape).
    """

    def __init__(
        self,
        completion_time: float,
        message_completion: Dict[int, float],
        link_busy_intervals: Optional[Dict[_LinkKey, List[Tuple[float, float]]]] = None,
        link_bytes: Optional[Dict[_LinkKey, float]] = None,
        num_links: int = 0,
        collective_size: float = 0.0,
        *,
        busy_columns: Optional[
            Dict[_LinkKey, Tuple[Sequence[float], Sequence[float]]]
        ] = None,
    ) -> None:
        if link_busy_intervals is not None and busy_columns is not None:
            raise SimulationError(
                "pass either link_busy_intervals or busy_columns, not both"
            )
        self.completion_time = completion_time
        self.message_completion = message_completion
        self.link_bytes = dict(link_bytes) if link_bytes else {}
        self.num_links = num_links
        self.collective_size = collective_size
        self._intervals = link_busy_intervals
        self._raw_columns = busy_columns
        if link_busy_intervals is None and busy_columns is None:
            self._intervals = {}
        self._columns_cache: Optional[_Columns] = None
        self._flat_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __repr__(self) -> str:
        return (
            f"SimulationResult(completion_time={self.completion_time!r}, "
            f"messages={len(self.message_completion)}, num_links={self.num_links})"
        )

    # ------------------------------------------------------------------
    # Busy-interval storage
    # ------------------------------------------------------------------
    @property
    def link_busy_intervals(self) -> Dict[_LinkKey, List[Tuple[float, float]]]:
        """Per-link (start, end) tuple lists, materialized lazily."""
        if self._intervals is None:
            self._intervals = {
                key: list(zip(starts, ends))
                for key, (starts, ends) in self._raw_columns.items()
            }
        return self._intervals

    def busy_columns(self) -> _Columns:
        """Per-link columnar ``(starts, ends)`` busy-interval arrays (cached).

        The native storage of the vectorized metric sweeps; treat the
        returned arrays as read-only.
        """
        return self._link_columns()

    def _link_columns(self) -> _Columns:
        """Per-link columnar ``(starts, ends)`` float arrays (cached)."""
        if self._columns_cache is None:
            columns: _Columns = {}
            if self._raw_columns is not None:
                for key, (starts, ends) in self._raw_columns.items():
                    columns[key] = (
                        np.asarray(starts, dtype=float),
                        np.asarray(ends, dtype=float),
                    )
            else:
                for key, intervals in self._intervals.items():
                    starts = [start for start, _ in intervals]
                    ends = [end for _, end in intervals]
                    columns[key] = (
                        np.asarray(starts, dtype=float),
                        np.asarray(ends, dtype=float),
                    )
            self._columns_cache = columns
        return self._columns_cache

    def _all_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """All busy intervals of all links, concatenated (cached)."""
        if self._flat_cache is None:
            columns = self._link_columns()
            if columns:
                starts = np.concatenate([pair[0] for pair in columns.values()])
                ends = np.concatenate([pair[1] for pair in columns.values()])
            else:
                starts = np.zeros(0)
                ends = np.zeros(0)
            self._flat_cache = (starts, ends)
        return self._flat_cache

    # ------------------------------------------------------------------
    # Binary round-trip (cross-process / artifact-store transport)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact binary encoding over the raw numpy columns.

        Serializes the delivery schedule (message ids and completion times),
        the per-link byte totals, and the busy-interval columns as raw
        little-endian arrays behind a fixed header — no pickling, bit-exact
        floats.  The counterpart of
        :meth:`repro.core.transfers.TransferTable.to_bytes` for simulation
        outcomes crossing process boundaries or resting in the artifact store.
        """
        columns = self._link_columns()
        link_keys = list(columns)
        interval_counts = [columns[key][0].shape[0] for key in link_keys]
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(interval_counts, dtype=np.int64))
        )
        message_ids = np.fromiter(
            self.message_completion.keys(), dtype=np.int64, count=len(self.message_completion)
        )
        message_times = np.fromiter(
            self.message_completion.values(),
            dtype=np.float64,
            count=len(self.message_completion),
        )
        byte_keys = list(self.link_bytes)
        parts = [
            _BYTES_MAGIC,
            _HEADER.pack(
                self.completion_time,
                self.num_links,
                self.collective_size,
                message_ids.shape[0],
                len(link_keys),
                int(indptr[-1]),
                len(byte_keys),
            ),
            np.ascontiguousarray(message_ids, dtype="<i8").tobytes(),
            np.ascontiguousarray(message_times, dtype="<f8").tobytes(),
            np.asarray([key[0] for key in link_keys], dtype="<i8").tobytes(),
            np.asarray([key[1] for key in link_keys], dtype="<i8").tobytes(),
            np.ascontiguousarray(indptr, dtype="<i8").tobytes(),
        ]
        if link_keys:
            parts.append(
                np.ascontiguousarray(
                    np.concatenate([columns[key][0] for key in link_keys]), dtype="<f8"
                ).tobytes()
            )
            parts.append(
                np.ascontiguousarray(
                    np.concatenate([columns[key][1] for key in link_keys]), dtype="<f8"
                ).tobytes()
            )
        parts.append(np.asarray([key[0] for key in byte_keys], dtype="<i8").tobytes())
        parts.append(np.asarray([key[1] for key in byte_keys], dtype="<i8").tobytes())
        parts.append(
            np.fromiter(
                self.link_bytes.values(), dtype=np.float64, count=len(byte_keys)
            ).astype("<f8").tobytes()
        )
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimulationResult":
        """Decode :meth:`to_bytes` output, validating structure on load.

        Raises :class:`ValueError` on a bad magic, a truncated payload, or an
        inconsistent busy-interval index — corrupt buffers fail loudly.
        """
        data = bytes(data)
        magic_len = len(_BYTES_MAGIC)
        if len(data) < magic_len + _HEADER.size or data[:magic_len] != _BYTES_MAGIC:
            raise ValueError("not a SimulationResult byte payload (bad magic)")
        (
            completion_time,
            num_links,
            collective_size,
            num_messages,
            num_busy_links,
            num_intervals,
            num_byte_links,
        ) = _HEADER.unpack_from(data, magic_len)
        expected = (
            magic_len
            + _HEADER.size
            + num_messages * 16
            + num_busy_links * 16
            + (num_busy_links + 1) * 8
            + num_intervals * 16
            + num_byte_links * 24
        )
        if len(data) != expected:
            raise ValueError(
                f"SimulationResult byte payload should be {expected} bytes, got {len(data)}"
            )

        offset = magic_len + _HEADER.size

        def column(count: int, dtype: str, native: type) -> np.ndarray:
            nonlocal offset
            raw = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            offset += count * 8
            return raw.astype(native, copy=True)

        message_ids = column(num_messages, "<i8", np.int64)
        message_times = column(num_messages, "<f8", np.float64)
        busy_sources = column(num_busy_links, "<i8", np.int64)
        busy_dests = column(num_busy_links, "<i8", np.int64)
        indptr = column(num_busy_links + 1, "<i8", np.int64)
        busy_starts = column(num_intervals, "<f8", np.float64)
        busy_ends = column(num_intervals, "<f8", np.float64)
        bytes_sources = column(num_byte_links, "<i8", np.int64)
        bytes_dests = column(num_byte_links, "<i8", np.int64)
        bytes_values = column(num_byte_links, "<f8", np.float64)

        if (
            indptr.shape[0] == 0
            or indptr[0] != 0
            or indptr[-1] != num_intervals
            or (np.diff(indptr) < 0).any()
        ):
            raise ValueError("SimulationResult byte payload has a corrupt busy-interval index")

        busy_columns = {
            (int(source), int(dest)): (busy_starts[lo:hi], busy_ends[lo:hi])
            for source, dest, lo, hi in zip(
                busy_sources.tolist(), busy_dests.tolist(), indptr[:-1].tolist(), indptr[1:].tolist()
            )
        }
        return cls(
            completion_time=float(completion_time),
            message_completion=dict(zip(message_ids.tolist(), message_times.tolist())),
            link_bytes={
                (int(source), int(dest)): value
                for source, dest, value in zip(
                    bytes_sources.tolist(), bytes_dests.tolist(), bytes_values.tolist()
                )
            },
            num_links=int(num_links),
            collective_size=float(collective_size),
            busy_columns=busy_columns,
        )

    # ------------------------------------------------------------------
    # Collective-level metrics
    # ------------------------------------------------------------------
    def collective_bandwidth(self) -> float:
        """All-Reduce-style bandwidth: collective size divided by completion time."""
        if self.collective_size <= 0:
            raise SimulationError("collective_size was not set on this result")
        if self.completion_time <= 0:
            return float("inf")
        return self.collective_size / self.completion_time

    # ------------------------------------------------------------------
    # Per-link metrics
    # ------------------------------------------------------------------
    def link_busy_time(self) -> Dict[_LinkKey, float]:
        """Total busy seconds per link (vectorized column sums)."""
        return {
            key: float(np.sum(ends) - np.sum(starts))
            for key, (starts, ends) in self._link_columns().items()
        }

    def per_link_utilization(self) -> Dict[_LinkKey, float]:
        """Busy fraction of each link over the whole run."""
        if self.completion_time <= 0:
            return {key: 0.0 for key in self._link_columns()}
        return {
            key: busy / self.completion_time
            for key, busy in self.link_busy_time().items()
        }

    def average_link_utilization(self) -> float:
        """Mean busy fraction across all links (the Fig. 15(b) quantity)."""
        if self.num_links == 0 or self.completion_time <= 0:
            return 0.0
        starts, ends = self._all_columns()
        total_busy = float(np.sum(ends) - np.sum(starts))
        return total_busy / (self.num_links * self.completion_time)

    def normalized_link_loads(self) -> Dict[_LinkKey, float]:
        """Per-link bytes normalized by the maximum (the Fig. 1 heat-map values)."""
        if not self.link_bytes:
            return {}
        peak = max(self.link_bytes.values())
        if peak <= 0:
            return {link: 0.0 for link in self.link_bytes}
        return {link: load / peak for link, load in self.link_bytes.items()}

    # ------------------------------------------------------------------
    # Time series
    # ------------------------------------------------------------------
    def utilization_timeline(self, num_samples: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """Fraction of links busy over time (the Fig. 16(b) / Fig. 18 series).

        Returns ``(times, utilization)`` arrays of length ``num_samples``.
        Instantaneous (zero-width) transmissions count at their sample point;
        see :func:`sweep_busy_link_counts`.
        """
        if num_samples < 1:
            raise SimulationError(f"num_samples must be positive, got {num_samples}")
        horizon = self.completion_time
        times = np.linspace(0.0, horizon, num_samples) if horizon > 0 else np.zeros(num_samples)
        if self.num_links == 0 or horizon <= 0:
            return times, np.zeros(num_samples)
        return times, sweep_busy_link_counts(times, self._link_columns()) / self.num_links

    def busy_link_count_at(self, time: float) -> int:
        """Number of links transmitting at ``time``.

        A link with a zero-width (pure-latency) transmission counts exactly
        at that transmission's instant.
        """
        count = 0
        for starts, ends in self._link_columns().values():
            busy = (starts <= time) & (time < ends)
            if busy.any() or bool(np.any((starts == ends) & (starts == time))):
                count += 1
        return count
