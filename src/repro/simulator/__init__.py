"""Congestion-aware analytical network simulator (ASTRA-sim-like backend)."""

from repro.simulator.adapters import (
    FlatWorkload,
    algorithm_to_flat_workload,
    algorithm_to_messages,
    schedule_to_flat_workload,
    schedule_to_messages,
    simulate_algorithm,
    simulate_schedule,
)
from repro.simulator.engine import CongestionAwareSimulator
from repro.simulator.messages import Message
from repro.simulator.result import SimulationResult
from repro.simulator.schedule import LogicalSchedule, LogicalSend
from repro.simulator.semantics import (
    check_all_gather_schedule,
    check_all_reduce_schedule,
    replay_contributions,
)

__all__ = [
    "CongestionAwareSimulator",
    "FlatWorkload",
    "LogicalSchedule",
    "LogicalSend",
    "Message",
    "SimulationResult",
    "algorithm_to_flat_workload",
    "algorithm_to_messages",
    "check_all_gather_schedule",
    "check_all_reduce_schedule",
    "replay_contributions",
    "schedule_to_flat_workload",
    "schedule_to_messages",
    "simulate_algorithm",
    "simulate_schedule",
]
