"""Logical collective schedules (topology-unaware algorithm descriptions).

Basic collective algorithms such as Ring, Direct, or Recursive
Halving-Doubling are defined as *logical* schedules over NPU ranks: ordered
steps of chunk sends that do not reference physical links at all.  When such
a schedule is executed on a physical topology whose connectivity does not
match (the Fig. 1 scenario), sends between non-adjacent NPUs are routed over
multiple hops and contend for links — which is exactly what the
congestion-aware simulator models.

Dependency semantics: a send of chunk ``c`` out of NPU ``s`` at step ``k``
implicitly depends on every send of chunk ``c`` *into* ``s`` at a step smaller
than ``k``.  This captures both forwarding (the chunk must have arrived) and
reduction (all partials routed through ``s`` must have arrived) without the
schedule having to enumerate dependencies explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["LogicalSend", "LogicalSchedule"]


@dataclass(frozen=True, order=True)
class LogicalSend:
    """One logical chunk send at a given algorithm step."""

    step: int
    chunk: int
    source: int
    dest: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise SimulationError(f"step must be non-negative, got {self.step}")
        if self.source == self.dest:
            raise SimulationError(f"send {self} has identical source and dest")


@dataclass
class LogicalSchedule:
    """A topology-unaware collective algorithm: steps of logical chunk sends.

    Attributes
    ----------
    sends:
        All logical sends.
    num_npus:
        Number of participating NPUs.
    chunk_size:
        Size of each chunk in bytes.
    collective_size:
        Per-NPU collective buffer size in bytes.
    name:
        Algorithm name, e.g. ``"Ring"`` or ``"Direct"``.
    pattern_name:
        Collective pattern implemented, e.g. ``"AllReduce"``.
    """

    sends: List[LogicalSend]
    num_npus: int
    chunk_size: float
    collective_size: float
    name: str
    pattern_name: str = "AllReduce"
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Lazily built step -> sends index (in sends order); rebuilt on demand,
    #: never compared or printed.  Invalidate with ``invalidate_step_index``
    #: after mutating ``sends`` in place.
    _step_index: Optional[Dict[int, List[LogicalSend]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_steps(self) -> int:
        """Number of distinct algorithm steps."""
        if not self.sends:
            return 0
        return max(self._by_step()) + 1

    @property
    def num_sends(self) -> int:
        """Total number of logical sends."""
        return len(self.sends)

    def _by_step(self) -> Dict[int, List[LogicalSend]]:
        """Cached step -> sends index (one pass over ``sends``, built lazily).

        Turns per-step iteration from O(steps x sends) repeated scans into a
        single O(sends) pass.
        """
        if self._step_index is None:
            index: Dict[int, List[LogicalSend]] = {}
            for send in self.sends:
                index.setdefault(send.step, []).append(send)
            self._step_index = index
        return self._step_index

    def invalidate_step_index(self) -> None:
        """Drop the cached step index after mutating ``sends`` in place."""
        self._step_index = None

    def sends_at_step(self, step: int) -> List[LogicalSend]:
        """All sends scheduled at ``step`` (from the cached step index)."""
        return list(self._by_step().get(step, ()))

    def steps(self) -> Iterator[Tuple[int, List[LogicalSend]]]:
        """Iterate ``(step, sends)`` pairs in ascending step order."""
        index = self._by_step()
        for step in sorted(index):
            yield step, list(index[step])

    def total_bytes(self) -> float:
        """Total payload bytes moved by the schedule (ignoring multi-hop routing)."""
        return self.num_sends * self.chunk_size

    def sends_per_npu(self) -> Dict[int, int]:
        """Number of sends originating at each NPU."""
        counts: Dict[int, int] = {npu: 0 for npu in range(self.num_npus)}
        for send in self.sends:
            counts[send.source] += 1
        return counts

    def validate(self) -> None:
        """Check every endpoint is a valid NPU index."""
        for send in self.sends:
            for endpoint in (send.source, send.dest):
                if not 0 <= endpoint < self.num_npus:
                    raise SimulationError(
                        f"send {send} references NPU {endpoint} outside 0..{self.num_npus - 1}"
                    )
