"""Logical collective schedules (topology-unaware algorithm descriptions).

Basic collective algorithms such as Ring, Direct, or Recursive
Halving-Doubling are defined as *logical* schedules over NPU ranks: ordered
steps of chunk sends that do not reference physical links at all.  When such
a schedule is executed on a physical topology whose connectivity does not
match (the Fig. 1 scenario), sends between non-adjacent NPUs are routed over
multiple hops and contend for links — which is exactly what the
congestion-aware simulator models.

Dependency semantics: a send of chunk ``c`` out of NPU ``s`` at step ``k``
implicitly depends on every send of chunk ``c`` *into* ``s`` at a step smaller
than ``k``.  This captures both forwarding (the chunk must have arrived) and
reduction (all partials routed through ``s`` must have arrived) without the
schedule having to enumerate dependencies explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["LogicalSend", "LogicalSchedule", "sends_from_columns"]

_tuple_new = tuple.__new__


class _LogicalSendFields(NamedTuple):
    step: int
    chunk: int
    source: int
    dest: int


class LogicalSend(_LogicalSendFields):
    """One logical chunk send at a given algorithm step.

    A named tuple (ordered and compared field-by-field, hashable, immutable)
    — the same treatment :class:`~repro.core.algorithm.ChunkTransfer` got:
    the public constructor validates, while bulk construction from
    already-validated columns goes through ``LogicalSend._make`` at C speed
    (see :func:`sends_from_columns`).
    """

    __slots__ = ()

    def __new__(cls, step: int, chunk: int, source: int, dest: int):
        self = _tuple_new(cls, (step, chunk, source, dest))
        if step < 0:
            raise SimulationError(f"step must be non-negative, got {step}")
        if source == dest:
            raise SimulationError(f"send {self} has identical source and dest")
        return self


def sends_from_columns(
    steps: Sequence[int],
    chunks: Sequence[int],
    sources: Sequence[int],
    dests: Sequence[int],
) -> List[LogicalSend]:
    """Materialize a send list from four parallel columns (the fast path).

    Validates the columns wholesale — the checks the :class:`LogicalSend`
    constructor performs per instance — then builds the tuples through
    ``LogicalSend._make`` without per-send Python-level ``__new__`` calls.
    Columns may be numpy arrays or plain sequences.
    """
    import numpy as np

    steps_arr = np.asarray(steps, dtype=np.int64)
    sources_arr = np.asarray(sources, dtype=np.int64)
    dests_arr = np.asarray(dests, dtype=np.int64)
    if (steps_arr < 0).any():
        raise SimulationError(
            f"step must be non-negative, got {int(steps_arr.min())}"
        )
    degenerate = sources_arr == dests_arr
    if degenerate.any():
        index = int(np.flatnonzero(degenerate)[0])
        raise SimulationError(
            f"send (step={int(steps_arr[index])}, source={int(sources_arr[index])}) "
            "has identical source and dest"
        )
    chunks_arr = np.asarray(chunks, dtype=np.int64)
    return list(
        map(
            LogicalSend._make,
            zip(
                steps_arr.tolist(),
                chunks_arr.tolist(),
                sources_arr.tolist(),
                dests_arr.tolist(),
            ),
        )
    )


@dataclass
class LogicalSchedule:
    """A topology-unaware collective algorithm: steps of logical chunk sends.

    Attributes
    ----------
    sends:
        All logical sends.
    num_npus:
        Number of participating NPUs.
    chunk_size:
        Size of each chunk in bytes.
    collective_size:
        Per-NPU collective buffer size in bytes.
    name:
        Algorithm name, e.g. ``"Ring"`` or ``"Direct"``.
    pattern_name:
        Collective pattern implemented, e.g. ``"AllReduce"``.
    """

    sends: List[LogicalSend]
    num_npus: int
    chunk_size: float
    collective_size: float
    name: str
    pattern_name: str = "AllReduce"
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Lazily built step -> sends index (in sends order); rebuilt on demand,
    #: never compared or printed.  Invalidate with ``invalidate_step_index``
    #: after mutating ``sends`` in place.
    _step_index: Optional[Dict[int, List[LogicalSend]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_steps(self) -> int:
        """Number of distinct algorithm steps."""
        if not self.sends:
            return 0
        return max(self._by_step()) + 1

    @property
    def num_sends(self) -> int:
        """Total number of logical sends."""
        return len(self.sends)

    def _by_step(self) -> Dict[int, List[LogicalSend]]:
        """Cached step -> sends index (one pass over ``sends``, built lazily).

        Turns per-step iteration from O(steps x sends) repeated scans into a
        single O(sends) pass.
        """
        if self._step_index is None:
            index: Dict[int, List[LogicalSend]] = {}
            for send in self.sends:
                index.setdefault(send.step, []).append(send)
            self._step_index = index
        return self._step_index

    def invalidate_step_index(self) -> None:
        """Drop the cached step index after mutating ``sends`` in place."""
        self._step_index = None

    def sends_at_step(self, step: int) -> List[LogicalSend]:
        """All sends scheduled at ``step`` (from the cached step index)."""
        return list(self._by_step().get(step, ()))

    def steps(self) -> Iterator[Tuple[int, List[LogicalSend]]]:
        """Iterate ``(step, sends)`` pairs in ascending step order."""
        index = self._by_step()
        for step in sorted(index):
            yield step, list(index[step])

    def total_bytes(self) -> float:
        """Total payload bytes moved by the schedule (ignoring multi-hop routing)."""
        return self.num_sends * self.chunk_size

    def sends_per_npu(self) -> Dict[int, int]:
        """Number of sends originating at each NPU."""
        counts: Dict[int, int] = {npu: 0 for npu in range(self.num_npus)}
        for send in self.sends:
            counts[send.source] += 1
        return counts

    def validate(self) -> None:
        """Check every endpoint is a valid NPU index."""
        for send in self.sends:
            for endpoint in (send.source, send.dest):
                if not 0 <= endpoint < self.num_npus:
                    raise SimulationError(
                        f"send {send} references NPU {endpoint} outside 0..{self.num_npus - 1}"
                    )
