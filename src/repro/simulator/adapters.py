"""Adapters that turn collective algorithms and schedules into simulator messages.

Two kinds of collective descriptions are simulated:

* :class:`~repro.core.algorithm.CollectiveAlgorithm` — physically routed,
  timed link-chunk matches (the TACOS output and the spanning-tree baselines);
* :class:`~repro.simulator.schedule.LogicalSchedule` — topology-unaware step
  schedules (Ring, Direct, RHD, ... executed on arbitrary topologies).

In both cases the dependency rule is the same: a send of chunk ``c`` out of
NPU ``s`` depends on every earlier send of chunk ``c`` *into* ``s``.  For
non-reducing collectives that expresses forwarding order; for reduction
collectives it expresses that all partials routed through ``s`` must have
arrived before ``s`` forwards its accumulated partial.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.algorithm import CollectiveAlgorithm
from repro.simulator.engine import CongestionAwareSimulator
from repro.simulator.messages import Message
from repro.simulator.result import SimulationResult
from repro.simulator.schedule import LogicalSchedule
from repro.topology.topology import Topology

__all__ = [
    "algorithm_to_messages",
    "schedule_to_messages",
    "simulate_algorithm",
    "simulate_schedule",
]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-9


def algorithm_to_messages(algorithm: CollectiveAlgorithm) -> List[Message]:
    """Convert a timed collective algorithm into dependency-linked messages.

    The synthesized timing is used only to derive the dependency structure
    (which inbound transfer enables which outbound transfer); the simulator
    re-times everything according to link availability, so a TACOS algorithm
    simulated on its own topology reproduces its synthesized schedule, while
    the same structure simulated on a slower network stretches accordingly.
    """
    transfers = sorted(algorithm.transfers, key=lambda item: (item.start, item.end))
    inbound: Dict[Tuple[int, int], List[Tuple[float, int]]] = {}
    for index, transfer in enumerate(transfers):
        inbound.setdefault((transfer.dest, transfer.chunk), []).append((transfer.end, index))

    # A static collective algorithm also prescribes the order in which each
    # physical link transmits its chunks; preserving that order as a
    # dependency keeps the simulated execution faithful to the algorithm
    # (otherwise an early-ready later chunk could jump the queue and delay the
    # chunk the algorithm scheduled first).
    previous_on_link: Dict[Tuple[int, int], int] = {}
    link_predecessor: List[int] = []
    for index, transfer in enumerate(transfers):
        link_predecessor.append(previous_on_link.get(transfer.link, -1))
        previous_on_link[transfer.link] = index

    messages = []
    for index, transfer in enumerate(transfers):
        providers = inbound.get((transfer.source, transfer.chunk), [])
        depends_on = {
            provider_index
            for end, provider_index in providers
            if end <= transfer.start + _TIME_EPS
        }
        if link_predecessor[index] >= 0:
            depends_on.add(link_predecessor[index])
        messages.append(
            Message(
                message_id=index,
                source=transfer.source,
                dest=transfer.dest,
                size=algorithm.chunk_size,
                chunk=transfer.chunk,
                depends_on=frozenset(depends_on),
            )
        )
    return messages


def schedule_to_messages(schedule: LogicalSchedule) -> List[Message]:
    """Convert a logical step schedule into dependency-linked messages."""
    schedule.validate()
    # Walk the cached step index rather than sorting the full send list: the
    # per-step groups are already materialized, so only the (much smaller)
    # within-step ordering remains to be sorted.
    sends = [
        send
        for _, step_sends in schedule.steps()
        for send in sorted(step_sends, key=lambda send: (send.source, send.dest, send.chunk))
    ]
    inbound: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for index, send in enumerate(sends):
        inbound.setdefault((send.dest, send.chunk), []).append((send.step, index))

    messages = []
    for index, send in enumerate(sends):
        providers = inbound.get((send.source, send.chunk), [])
        depends_on = frozenset(
            provider_index for step, provider_index in providers if step < send.step
        )
        messages.append(
            Message(
                message_id=index,
                source=send.source,
                dest=send.dest,
                size=schedule.chunk_size,
                chunk=send.chunk,
                depends_on=depends_on,
            )
        )
    return messages


def simulate_algorithm(
    topology: Topology,
    algorithm: CollectiveAlgorithm,
    *,
    routing_message_size: Optional[float] = None,
) -> SimulationResult:
    """Simulate a physically routed collective algorithm on ``topology``."""
    simulator = CongestionAwareSimulator(topology, routing_message_size=routing_message_size)
    return simulator.run(
        algorithm_to_messages(algorithm), collective_size=algorithm.collective_size
    )


def simulate_schedule(
    topology: Topology,
    schedule: LogicalSchedule,
    *,
    routing_message_size: Optional[float] = None,
) -> SimulationResult:
    """Simulate a topology-unaware logical schedule on ``topology``."""
    simulator = CongestionAwareSimulator(topology, routing_message_size=routing_message_size)
    return simulator.run(
        schedule_to_messages(schedule), collective_size=schedule.collective_size
    )
