"""Adapters that turn collective algorithms and schedules into simulator workloads.

Two kinds of collective descriptions are simulated:

* :class:`~repro.core.algorithm.CollectiveAlgorithm` — physically routed,
  timed link-chunk matches (the TACOS output and the spanning-tree baselines);
* :class:`~repro.simulator.schedule.LogicalSchedule` — topology-unaware step
  schedules (Ring, Direct, RHD, ... executed on arbitrary topologies).

In both cases the dependency rule is the same: a send of chunk ``c`` out of
NPU ``s`` depends on every earlier send of chunk ``c`` *into* ``s``.  For
non-reducing collectives that expresses forwarding order; for reduction
collectives it expresses that all partials routed through ``s`` must have
arrived before ``s`` forwards its accumulated partial.

Since the columnar-IR refactor the hot path never materializes
:class:`~repro.simulator.messages.Message` objects: the dependency structure
is derived as a CSR directly from the algorithm's
:class:`~repro.core.transfers.TransferTable` columns (or the schedule's send
columns) with one grouped merge sweep, and handed to
:meth:`~repro.simulator.engine.CongestionAwareSimulator.run_flat`.  The
``*_to_messages`` functions remain as the compatibility view — they build
``Message`` objects from the same flat workload, so both paths carry
identical dependency sets, positions, and therefore identical simulated
schedules (``tacos-repro bench`` asserts byte-identical
``message_completion`` against the frozen object-path adapters in
:mod:`repro.bench.reference`).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

import numpy as np

from repro.core.algorithm import CollectiveAlgorithm
from repro.simulator.engine import CongestionAwareSimulator
from repro.simulator.messages import Message
from repro.simulator.result import SimulationResult
from repro.simulator.schedule import LogicalSchedule
from repro.topology.topology import Topology

__all__ = [
    "FlatWorkload",
    "algorithm_to_flat_workload",
    "algorithm_to_messages",
    "schedule_to_flat_workload",
    "schedule_to_messages",
    "simulate_algorithm",
    "simulate_schedule",
]

#: Tolerance used when comparing floating-point times.
_TIME_EPS = 1e-9

_EMPTY_INT = np.zeros(0, dtype=np.int64)


class FlatWorkload(NamedTuple):
    """Columnar simulator workload: message endpoints plus a dependency CSR.

    Message *positions* (row indices) double as message ids; ``size`` is the
    uniform payload of every message.  ``dep_indices[dep_indptr[i]:
    dep_indptr[i + 1]]`` are the positions message ``i`` depends on.
    """

    sources: np.ndarray
    dests: np.ndarray
    chunks: np.ndarray
    size: float
    dep_indptr: np.ndarray
    dep_indices: np.ndarray

    @property
    def num_messages(self) -> int:
        return int(self.sources.shape[0])


def _grouped_prefix_bounds(
    provider_keys: np.ndarray,
    provider_vals: np.ndarray,
    query_keys: np.ndarray,
    query_vals: np.ndarray,
    *,
    strict: bool,
) -> tuple:
    """Per query, the slice of matching providers in ``(key, val)`` order.

    Providers sorted stably by ``(key, val)`` form one array; for every query
    this returns ``(lo, hi)`` such that providers ``lo..hi-1`` of that array
    share the query's key and have ``val <= query_val`` (``<`` when
    ``strict``).  One merged lexsort + segmented cumulative count — no
    per-group Python loop.
    """
    num_providers = provider_keys.shape[0]
    num_queries = query_keys.shape[0]
    provider_kind, query_kind = (0, 1) if not strict else (1, 0)
    keys = np.concatenate((provider_keys, query_keys))
    vals = np.concatenate((provider_vals, query_vals))
    kinds = np.concatenate(
        (
            np.full(num_providers, provider_kind, dtype=np.int8),
            np.full(num_queries, query_kind, dtype=np.int8),
        )
    )
    order = np.lexsort((kinds, vals, keys))
    is_provider = order < num_providers
    provider_running = np.cumsum(is_provider)
    sorted_keys = keys[order]
    segment_start = np.ones(order.shape[0], dtype=bool)
    segment_start[1:] = sorted_keys[1:] != sorted_keys[:-1]
    segment_id = np.cumsum(segment_start) - 1
    base_per_segment = (provider_running - is_provider)[segment_start]
    base = base_per_segment[segment_id]

    query_mask = ~is_provider
    query_index = order[query_mask] - num_providers
    hi = np.empty(num_queries, dtype=np.int64)
    lo = np.empty(num_queries, dtype=np.int64)
    hi[query_index] = provider_running[query_mask]
    lo[query_index] = base[query_mask]
    return lo, hi


def _dependency_csr(
    provider_keys: np.ndarray,
    provider_vals: np.ndarray,
    query_keys: np.ndarray,
    query_vals: np.ndarray,
    link_predecessor: np.ndarray,
    *,
    strict: bool,
) -> tuple:
    """Assemble the per-message dependency CSR from providers + predecessors."""
    provider_order = np.lexsort((provider_vals, provider_keys))
    lo, hi = _grouped_prefix_bounds(
        provider_keys, provider_vals, query_keys, query_vals, strict=strict
    )
    counts = hi - lo
    has_predecessor = link_predecessor >= 0
    dep_counts = counts + has_predecessor
    dep_indptr = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(dep_counts))
    )
    dep_indices = np.empty(int(dep_indptr[-1]), dtype=np.int64)
    total_providers = int(counts.sum())
    if total_providers:
        offsets = np.cumsum(counts) - counts
        intra = np.arange(total_providers, dtype=np.int64) - np.repeat(offsets, counts)
        dep_indices[np.repeat(dep_indptr[:-1], counts) + intra] = provider_order[
            np.repeat(lo, counts) + intra
        ]
    dep_indices[dep_indptr[1:][has_predecessor] - 1] = link_predecessor[has_predecessor]
    return dep_indptr, dep_indices


def _link_predecessors(link_codes: np.ndarray) -> np.ndarray:
    """Per row, the previous row using the same link (``-1`` for the first)."""
    count = link_codes.shape[0]
    order = np.argsort(link_codes, kind="stable")
    same = link_codes[order][1:] == link_codes[order][:-1]
    predecessor = np.full(count, -1, dtype=np.int64)
    predecessor[order[1:][same]] = order[:-1][same]
    return predecessor


def algorithm_to_flat_workload(algorithm: CollectiveAlgorithm) -> FlatWorkload:
    """Derive the simulator workload columns from a timed collective algorithm.

    The synthesized timing is used only to derive the dependency structure
    (which inbound transfer enables which outbound transfer); the simulator
    re-times everything according to link availability, so a TACOS algorithm
    simulated on its own topology reproduces its synthesized schedule, while
    the same structure simulated on a slower network stretches accordingly.

    Messages follow the transfers sorted by ``(start, end)`` (stable); a
    message depends on every inbound transfer of its chunk into its source
    that completes by its start time, plus — because a static collective
    algorithm also prescribes the order in which each physical link transmits
    its chunks — its predecessor on the same link.
    """
    table = algorithm.table
    count = len(table)
    if count == 0:
        return FlatWorkload(
            _EMPTY_INT,
            _EMPTY_INT,
            _EMPTY_INT,
            algorithm.chunk_size,
            np.zeros(1, dtype=np.int64),
            _EMPTY_INT,
        )
    order = table.time_sorted_order()
    starts = table.starts[order]
    ends = table.ends[order]
    chunks = table.chunks[order]
    sources = table.sources[order]
    dests = table.dests[order]

    chunk_stride = max(1, table.num_chunks)
    npu_stride = int(max(sources.max(), dests.max())) + 1
    dep_indptr, dep_indices = _dependency_csr(
        dests * chunk_stride + chunks,
        ends,
        sources * chunk_stride + chunks,
        starts + _TIME_EPS,
        _link_predecessors(sources * npu_stride + dests),
        strict=False,
    )
    return FlatWorkload(sources, dests, chunks, algorithm.chunk_size, dep_indptr, dep_indices)


def schedule_to_flat_workload(schedule: LogicalSchedule) -> FlatWorkload:
    """Derive the simulator workload columns from a logical step schedule.

    Messages follow the sends ordered by ``(step, source, dest, chunk)``
    (stable); a message depends on every send of its chunk into its source at
    a strictly earlier step.
    """
    schedule.validate()
    count = len(schedule.sends)
    if count == 0:
        return FlatWorkload(
            _EMPTY_INT,
            _EMPTY_INT,
            _EMPTY_INT,
            schedule.chunk_size,
            np.zeros(1, dtype=np.int64),
            _EMPTY_INT,
        )
    steps, chunks, sources, dests = (
        np.asarray(column, dtype=np.int64) for column in zip(*schedule.sends)
    )
    order = np.lexsort((chunks, dests, sources, steps))
    steps = steps[order]
    chunks = chunks[order]
    sources = sources[order]
    dests = dests[order]

    chunk_stride = int(chunks.max()) + 1
    dep_indptr, dep_indices = _dependency_csr(
        dests * chunk_stride + chunks,
        steps,
        sources * chunk_stride + chunks,
        steps,
        np.full(count, -1, dtype=np.int64),
        strict=True,
    )
    return FlatWorkload(sources, dests, chunks, schedule.chunk_size, dep_indptr, dep_indices)


def _workload_to_messages(workload: FlatWorkload) -> List[Message]:
    """Materialize the ``Message`` object view of a flat workload."""
    indptr = workload.dep_indptr.tolist()
    indices = workload.dep_indices.tolist()
    return [
        Message(
            message_id=index,
            source=source,
            dest=dest,
            size=workload.size,
            chunk=chunk,
            depends_on=frozenset(indices[indptr[index] : indptr[index + 1]]),
        )
        for index, (source, dest, chunk) in enumerate(
            zip(
                workload.sources.tolist(),
                workload.dests.tolist(),
                workload.chunks.tolist(),
            )
        )
    ]


def algorithm_to_messages(algorithm: CollectiveAlgorithm) -> List[Message]:
    """Convert a timed collective algorithm into dependency-linked messages.

    The object view of :func:`algorithm_to_flat_workload`, kept for API
    compatibility and debugging; the simulation path feeds the flat columns
    to the engine directly.
    """
    return _workload_to_messages(algorithm_to_flat_workload(algorithm))


def schedule_to_messages(schedule: LogicalSchedule) -> List[Message]:
    """Convert a logical step schedule into dependency-linked messages."""
    return _workload_to_messages(schedule_to_flat_workload(schedule))


def simulate_algorithm(
    topology: Topology,
    algorithm: CollectiveAlgorithm,
    *,
    routing_message_size: Optional[float] = None,
) -> SimulationResult:
    """Simulate a physically routed collective algorithm on ``topology``."""
    simulator = CongestionAwareSimulator(topology, routing_message_size=routing_message_size)
    workload = algorithm_to_flat_workload(algorithm)
    return simulator.run_flat(
        workload.sources,
        workload.dests,
        workload.size,
        workload.dep_indptr,
        workload.dep_indices,
        collective_size=algorithm.collective_size,
    )


def simulate_schedule(
    topology: Topology,
    schedule: LogicalSchedule,
    *,
    routing_message_size: Optional[float] = None,
) -> SimulationResult:
    """Simulate a topology-unaware logical schedule on ``topology``."""
    simulator = CongestionAwareSimulator(topology, routing_message_size=routing_message_size)
    workload = schedule_to_flat_workload(schedule)
    return simulator.run_flat(
        workload.sources,
        workload.dests,
        workload.size,
        workload.dep_indptr,
        workload.dep_indices,
        collective_size=schedule.collective_size,
    )
