"""numba detection and the ``njit`` shim backing the native tier.

The kernels in this package are written as plain Python functions decorated
with :func:`njit`.  When numba is installed the decorator compiles them to
native code; when it is absent the shim returns the function unchanged, so
every kernel stays importable and callable in pure-Python ("py-mode").  That
is what lets the equivalence test suites pin kernel outputs against the flat
engine byte-for-byte on machines without numba: same code path, no compiler.

Nothing in this module may import the rest of :mod:`repro` — it sits at the
bottom of the kernel dependency stack.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NUMBA_AVAILABLE", "NUMBA_VERSION", "njit"]

try:  # pragma: no cover - exercised only when numba is installed
    import numba as _numba
    from numba import njit

    NUMBA_AVAILABLE: bool = True
    NUMBA_VERSION: Optional[str] = _numba.__version__
except ImportError:
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

    def njit(*args, **kwargs):  # noqa: ANN001 - decorator shim
        """Identity decorator: keeps kernels plain-Python when numba is absent.

        Accepts both the bare ``@njit`` form and the parametrized
        ``@njit(cache=True)`` form, mirroring numba's decorator protocol.
        """
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(func):
            return func

        return decorate
