"""Native matching-round kernel (the compiled twin of the flat direct pass).

:func:`native_run_matching_round` is a drop-in for
:func:`repro.core.matching.run_matching_round` and backs the ``native``
synthesis engine.  The hot part of Alg. 1 — scan the permuted pending pairs,
collect each destination's idle in-links whose sources hold the chunk, pick
one at random — runs inside :func:`_direct_match_kernel` over the same flat
arrays the pure-Python loop reads (acquisition/held mirror, incoming-link
CSR, link costs and free times).  The host then applies the bookkeeping the
kernel cannot touch (sorted holder lists, the activation heap, the TEN event
heap, :class:`~repro.core.algorithm.ChunkTransfer` rows) in match order.

Determinism contract
--------------------
The kernel reproduces the flat engine's RNG stream exactly:

* the per-round permutation is drawn on the host through the shared
  :func:`~repro.core.matching.shuffle_pairs` machinery (same numpy generator,
  seeded by the same single ``getrandbits(64)``);
* in-kernel tie-breaks consume the trial's Mersenne Twister through the
  :mod:`repro.kernels.mt19937` port — one ``_randbelow(n)`` per
  multi-candidate pick, none for single candidates — and the advanced state
  is pushed back into the Python ``random.Random`` afterwards;
* rounds the kernel does not support (forwarding passes, sub-epsilon link
  costs, heterogeneous cheap-region deferrals, small rounds) delegate to the
  flat implementation *before* consuming any randomness.

Without numba the kernel still runs as plain Python (see
:mod:`repro.kernels._numba`) when :data:`FORCE_PY_KERNEL` is set — that is
how the no-numba equivalence suites exercise this exact code path — but by
default the wrapper delegates wholesale to the flat engine, which is faster
than an interpreted kernel.
"""

from __future__ import annotations

import random
from bisect import insort
from heapq import heappush
from typing import Dict, List, Optional

import numpy as np

from repro.core.algorithm import ChunkTransfer
from repro.core.matching import (
    _MATCHABLE,
    _NUMPY_SHUFFLE_MIN,
    _TIME_EPS,
    MatchingState,
    _permuter,
    run_matching_round,
)
from repro.kernels._numba import NUMBA_AVAILABLE, njit
from repro.kernels.mt19937 import mt_export, mt_genrand, mt_restore
from repro.ten.network import TimeExpandedNetwork

__all__ = ["FORCE_PY_KERNEL", "native_run_matching_round"]

#: Test hook: run the kernel in interpreted py-mode even without numba, so
#: equivalence suites cover the kernel code path itself on numba-free hosts.
FORCE_PY_KERNEL = False


@njit(cache=True)
def _direct_match_kernel(
    kept,
    num_chunks,
    in_flat,
    in_indptr,
    link_sources,
    link_costs,
    free_times,
    held,
    time,
    threshold,
    idle_total,
    uniform_cost,
    prefer_lowest_cost,
    mt_key,
    mt_pos,
    out_codes,
    out_links,
):
    """Direct-pass scan over ``kept`` (permuted matchable pair codes).

    Mutates ``free_times`` (its private copy of the TEN column) and the MT
    state in place; records matches as parallel ``(code, link)`` rows and
    returns their count.  Stops like the scalar loop does when the span
    saturates.  ``held`` is frozen for the round (the caller guards
    ``time + min_link_cost > threshold``), so candidate checks need no
    acquisition updates for in-round commits.
    """
    matched = 0
    max_degree = 0
    for npu in range(in_indptr.shape[0] - 1):
        degree = in_indptr[npu + 1] - in_indptr[npu]
        if degree > max_degree:
            max_degree = degree
    candidates = np.empty(max_degree, np.int64)
    for i in range(kept.shape[0]):
        if idle_total == 0:
            break
        code = kept[i]
        dest = code // num_chunks
        chunk = code - dest * num_chunks
        count = 0
        for edge in range(in_indptr[dest], in_indptr[dest + 1]):
            link_id = in_flat[edge]
            if free_times[link_id] <= threshold and held[
                link_sources[link_id] * num_chunks + chunk
            ]:
                candidates[count] = link_id
                count += 1
        if count == 0:
            continue
        if count == 1:
            link_id = candidates[0]
        else:
            if not uniform_cost and prefer_lowest_cost:
                # Restrict to the cheapest candidates (mirrors _pick_link_id).
                best = link_costs[candidates[0]]
                for j in range(1, count):
                    cost = link_costs[candidates[j]]
                    if cost < best:
                        best = cost
                cheap_threshold = best + _TIME_EPS
                cheap_count = 0
                for j in range(count):
                    if link_costs[candidates[j]] <= cheap_threshold:
                        candidates[cheap_count] = candidates[j]
                        cheap_count += 1
                count = cheap_count
            if count == 1:
                link_id = candidates[0]
            else:
                # CPython _randbelow(count), inlined (bit_length + rejection).
                bits = 0
                value = count
                while value > 0:
                    value >>= 1
                    bits += 1
                shift = np.uint64(32 - bits)
                bound = np.uint64(count)
                draw = mt_genrand(mt_key, mt_pos) >> shift
                while draw >= bound:
                    draw = mt_genrand(mt_key, mt_pos) >> shift
                link_id = candidates[np.int64(draw)]
        free_times[link_id] = time + link_costs[link_id]
        idle_total -= 1
        out_codes[matched] = code
        out_links[matched] = link_id
        matched += 1
    return matched


def native_run_matching_round(
    ten: TimeExpandedNetwork,
    state: MatchingState,
    time: float,
    rng: random.Random,
    *,
    prefer_lowest_cost: bool = True,
    enable_forwarding: bool = True,
    hop_distances: Optional[List[List[int]]] = None,
    cheap_regions: Optional[Dict[float, List[frozenset]]] = None,
) -> List[ChunkTransfer]:
    """Run one matching round through the native kernel when profitable.

    Signature-compatible with
    :func:`repro.core.matching.run_matching_round`; unsupported rounds (and
    every round when numba is absent, unless :data:`FORCE_PY_KERNEL`)
    delegate to the flat implementation before any RNG draw, so outputs are
    byte-identical either way.
    """
    threshold = time + _TIME_EPS
    collect_deferred = enable_forwarding and hop_distances is not None
    if (
        (not NUMBA_AVAILABLE and not FORCE_PY_KERNEL)
        or collect_deferred
        or state._unsatisfied_count < _NUMPY_SHUFFLE_MIN
        or state._held is None
        or (cheap_regions is not None and prefer_lowest_cost)
        or not time + ten.min_link_cost > threshold
    ):
        return run_matching_round(
            ten,
            state,
            time,
            rng,
            prefer_lowest_cost=prefer_lowest_cost,
            enable_forwarding=enable_forwarding,
            hop_distances=hop_distances,
            cheap_regions=cheap_regions,
        )

    state.activate_until(time, ten.out_adjacency)
    idle_total = ten.idle_link_count(time)

    codes = state._pending_array()
    permutation = _permuter(rng).permutation(len(codes))
    transfers: List[ChunkTransfer] = []
    if idle_total == 0:
        # Saturated span: only the permutation consumes the RNG, exactly
        # like the flat loop breaking before its first draw.
        return transfers
    codes = codes[permutation]
    pair_state = state._pair_state
    kept = codes[np.frombuffer(pair_state, dtype=np.uint8)[codes] == _MATCHABLE]
    if not len(kept):
        return transfers
    in_flat, in_indptr, sources_arr = ten.in_link_csr()
    free_times = ten.free_times
    link_costs = ten.link_costs
    free_np = np.fromiter(free_times, dtype=np.float64, count=len(free_times))
    costs_np = np.fromiter(link_costs, dtype=np.float64, count=len(link_costs))
    mt_key, mt_pos, mt_meta = mt_export(rng)
    out_codes = np.empty(len(kept), dtype=np.int64)
    out_links = np.empty(len(kept), dtype=np.int64)
    matched = _direct_match_kernel(
        kept,
        state.num_chunks,
        in_flat,
        in_indptr,
        sources_arr,
        costs_np,
        free_np,
        state._held,
        time,
        threshold,
        idle_total,
        ten.uniform_cost,
        prefer_lowest_cost,
        mt_key,
        mt_pos,
        out_codes,
        out_links,
    )
    mt_restore(rng, mt_key, mt_pos, mt_meta)

    # Host-side commit in match order: the bookkeeping the kernel cannot
    # touch (sorted holders, activation/event heaps, transfer rows), with
    # the identical float expression for the completion time.
    num_chunks = state.num_chunks
    acquisition = state._acquisition
    holders = state._holders
    activations = state._activations
    link_sources = ten.link_sources
    event_heap = ten._event_heap
    event_times = ten._event_times
    tuple_new = tuple.__new__
    transfer_cls = ChunkTransfer
    for code, link_id in zip(out_codes[:matched].tolist(), out_links[:matched].tolist()):
        end = time + link_costs[link_id]
        free_times[link_id] = end
        if end not in event_times:
            event_times.add(end)
            heappush(event_heap, end)
        source = link_sources[link_id]
        dest, chunk = divmod(code, num_chunks)
        insort(holders[chunk], dest)
        acquisition[code] = end
        heappush(activations, (end, dest, chunk))
        pair_state[code] = 0  # _SATISFIED
        state._unsatisfied_count -= 1
        transfers.append(tuple_new(transfer_cls, (time, end, chunk, source, dest)))
    return transfers
