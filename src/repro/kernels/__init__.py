"""Optional native execution tier (numba ``@njit`` kernels).

Two kernels sit behind the existing engine seams, with graceful degradation
to the pure-Python flat paths — which remain the equivalence oracles — when
numba is not installed (install the ``tacos-repro[native]`` extra to enable
compilation):

* :func:`repro.kernels.matching.native_run_matching_round` — the matching
  round of Alg. 1, registered as the ``native`` synthesis engine;
* :func:`repro.kernels.event_loop.event_loop` — the simulator's FCFS event
  loop, dispatched from ``CongestionAwareSimulator``.

Both reproduce the flat engines' outputs byte-for-byte, including RNG
consumption (see :mod:`repro.kernels.mt19937`) and float operation order;
``tacos-repro bench --grid native`` races the two tiers and asserts it.
"""

from repro.kernels._numba import NUMBA_AVAILABLE, NUMBA_VERSION

__all__ = ["NUMBA_AVAILABLE", "NUMBA_VERSION"]
