"""Native event-loop kernel for the congestion-aware simulator.

:func:`event_loop` is the compiled twin of the heapq loop inside
:meth:`repro.simulator.engine.CongestionAwareSimulator._execute`.  It runs
over the already-materialized flat hop columns (signed link ids with the
final hop bitwise-inverted, per-hop serialization/latency, dependents CSR)
and returns the per-message completion times plus the ``(pos, start)``
transmission records in the exact order the Python loop would emit them;
the host reconstructs link statistics from those records unchanged.

Determinism contract
--------------------
FCFS tie-breaking is provably identical to the heapq path: events carry the
``(time, seq)`` key — ``seq`` increments per push and is unique — so the key
order is *strictly total*, and any correct min-heap extracts the unique
minimum of its current contents.  Push order is identical (same ready
conditions, same skip-heap fast path guarded by the same root comparison),
so the pop sequence, and with it every float operation
(``start = max(next_free, time)``, ``end = start + serialization``,
``arrival = end + latency``) in the same order, coincides with the
reference.  The heap here is an array-backed binary heap with explicit
sift-up/down on the ``(time, seq)`` key.
"""

from __future__ import annotations

import numpy as np

from repro.kernels._numba import njit

__all__ = ["event_loop"]


@njit(cache=True)
def event_loop(
    hop_links,
    hop_serialization,
    hop_latency,
    message_of_hop,
    first_pos,
    missing_deps,
    dependents_flat,
    dependents_indptr,
    num_links,
):
    """Run the FCFS event loop; see module docstring for the contract.

    Returns ``(completion, event_positions, event_starts, recorded)``:
    per-message completion times (``nan`` when a message never became
    ready), the transmission records in emission order, and their count.
    """
    num_messages = first_pos.shape[0]
    num_hops = hop_links.shape[0]
    ready_time = np.zeros(num_messages, np.float64)
    link_next_free = np.zeros(num_links, np.float64)
    completion = np.full(num_messages, np.nan, np.float64)
    event_positions = np.empty(num_hops, np.int64)
    event_starts = np.empty(num_hops, np.float64)
    recorded = 0

    # Array-backed binary min-heap on (time, seq); at most one in-flight
    # event per message exists at any moment.
    heap_time = np.empty(num_messages + 1, np.float64)
    heap_seq = np.empty(num_messages + 1, np.int64)
    heap_pos = np.empty(num_messages + 1, np.int64)
    heap_size = 0
    seq = 0

    for index in range(num_messages):
        if missing_deps[index] == 0:
            # Initial pushes carry increasing (0.0, seq): appending already
            # satisfies the heap property, no sift needed.
            heap_time[heap_size] = 0.0
            heap_seq[heap_size] = seq
            heap_pos[heap_size] = first_pos[index]
            heap_size += 1
            seq += 1

    completed = 0
    while heap_size > 0:
        time = heap_time[0]
        pos = heap_pos[0]
        # Pop: move the last leaf to the root and sift it down.
        heap_size -= 1
        if heap_size > 0:
            move_time = heap_time[heap_size]
            move_seq = heap_seq[heap_size]
            move_pos = heap_pos[heap_size]
            hole = 0
            while True:
                child = 2 * hole + 1
                if child >= heap_size:
                    break
                right = child + 1
                if right < heap_size and (
                    heap_time[right] < heap_time[child]
                    or (
                        heap_time[right] == heap_time[child]
                        and heap_seq[right] < heap_seq[child]
                    )
                ):
                    child = right
                if heap_time[child] < move_time or (
                    heap_time[child] == move_time and heap_seq[child] < move_seq
                ):
                    heap_time[hole] = heap_time[child]
                    heap_seq[hole] = heap_seq[child]
                    heap_pos[hole] = heap_pos[child]
                    hole = child
                else:
                    break
            heap_time[hole] = move_time
            heap_seq[hole] = move_seq
            heap_pos[hole] = move_pos

        while True:
            link_id = hop_links[pos]
            if link_id >= 0:
                next_free = link_next_free[link_id]
                start = next_free if next_free > time else time
                serialization_end = start + hop_serialization[pos]
                link_next_free[link_id] = serialization_end
                event_positions[recorded] = pos
                event_starts[recorded] = start
                recorded += 1
                arrival = serialization_end + hop_latency[pos]
                pos += 1
                # Skip-heap fast path: identical root comparison to the
                # Python loop; a strictly smaller key never ties, so
                # processing inline preserves the event order.
                if heap_size > 0 and heap_time[0] <= arrival:
                    hole = heap_size
                    heap_size += 1
                    while hole > 0:
                        parent = (hole - 1) // 2
                        if heap_time[parent] > arrival:
                            heap_time[hole] = heap_time[parent]
                            heap_seq[hole] = heap_seq[parent]
                            heap_pos[hole] = heap_pos[parent]
                            hole = parent
                        else:
                            break
                    heap_time[hole] = arrival
                    heap_seq[hole] = seq
                    heap_pos[hole] = pos
                    seq += 1
                    break
                time = arrival
                continue

            # Final hop (negative-encoded link): the message is delivered.
            link_id = ~link_id
            next_free = link_next_free[link_id]
            start = next_free if next_free > time else time
            serialization_end = start + hop_serialization[pos]
            link_next_free[link_id] = serialization_end
            event_positions[recorded] = pos
            event_starts[recorded] = start
            recorded += 1
            arrival = serialization_end + hop_latency[pos]
            index = message_of_hop[pos]
            completion[index] = arrival
            completed += 1
            for edge in range(dependents_indptr[index], dependents_indptr[index + 1]):
                dependent = dependents_flat[edge]
                if arrival > ready_time[dependent]:
                    ready_time[dependent] = arrival
                remaining = missing_deps[dependent] - 1
                missing_deps[dependent] = remaining
                if remaining == 0:
                    push_time = ready_time[dependent]
                    hole = heap_size
                    heap_size += 1
                    while hole > 0:
                        parent = (hole - 1) // 2
                        if heap_time[parent] > push_time or (
                            heap_time[parent] == push_time and heap_seq[parent] > seq
                        ):
                            heap_time[hole] = heap_time[parent]
                            heap_seq[hole] = heap_seq[parent]
                            heap_pos[hole] = heap_pos[parent]
                            hole = parent
                        else:
                            break
                    heap_time[hole] = push_time
                    heap_seq[hole] = seq
                    heap_pos[hole] = first_pos[dependent]
                    seq += 1
            break

    return completion, event_positions, event_starts, completed
