"""MT19937 port compatible with :class:`random.Random`, njit-compilable.

The native matching kernel must consume the trial RNG exactly like the flat
engine does — one ``randrange(n)`` per multi-candidate pick — while running
inside compiled code where :class:`random.Random` is unreachable.  This
module ports the two CPython primitives the matching draws reduce to:

* ``genrand_uint32`` — the Mersenne Twister word generator (including the
  624-word twist), bit-for-bit CPython's ``_randommodule.c``;
* ``_randbelow_with_getrandbits`` — CPython's rejection sampling
  (``k = n.bit_length()``; draw ``getrandbits(k)`` =
  ``genrand_uint32() >> (32 - k)`` until the value is below ``n``), which is
  the single draw behind both ``randrange(n)`` and ``choice``.

State crosses the boundary through :func:`mt_export` / :func:`mt_restore`,
which round-trip ``random.Random.getstate()``: the kernel advances the
generator in place, the host pushes the advanced state back, and subsequent
Python-side draws continue the identical stream.  The 624-word key is held
in ``uint64`` (values < 2^32) so the tempering shifts cannot overflow in
either py-mode numpy or compiled numba arithmetic; every constant is a
pre-cast ``np.uint64`` to keep the two modes' type promotion identical.
"""

from __future__ import annotations

import random
from typing import Tuple

import numpy as np

from repro.kernels._numba import njit

__all__ = [
    "mt_export",
    "mt_fill",
    "mt_genrand",
    "mt_randbelow",
    "mt_restore",
]

_N = 624
_M = 397
_MASK32 = np.uint64(0xFFFFFFFF)
_UPPER = np.uint64(0x80000000)
_LOWER = np.uint64(0x7FFFFFFF)
_MATRIX_A = np.uint64(0x9908B0DF)
_TEMPER_B = np.uint64(0x9D2C5680)
_TEMPER_C = np.uint64(0xEFC60000)
_ONE = np.uint64(1)
_S1 = np.uint64(1)
_S7 = np.uint64(7)
_S11 = np.uint64(11)
_S15 = np.uint64(15)
_S18 = np.uint64(18)


@njit(cache=True)
def mt_fill(key):
    """Regenerate all 624 state words in place (the MT19937 "twist")."""
    for i in range(_N):
        y = (key[i] & _UPPER) | (key[(i + 1) % _N] & _LOWER)
        value = key[(i + _M) % _N] ^ (y >> _S1)
        if y & _ONE:
            value ^= _MATRIX_A
        key[i] = value & _MASK32


@njit(cache=True)
def mt_genrand(key, pos):
    """One tempered 32-bit draw; ``pos`` is a 1-element int64 cursor array."""
    index = pos[0]
    if index >= _N:
        mt_fill(key)
        index = 0
    y = key[index]
    pos[0] = index + 1
    y ^= y >> _S11
    y ^= (y << _S7) & _TEMPER_B
    y ^= (y << _S15) & _TEMPER_C
    y ^= y >> _S18
    return y


@njit(cache=True)
def mt_randbelow(key, pos, n):
    """Uniform int in ``[0, n)``, consuming draws exactly like CPython.

    ``n`` must be at least 1 and below 2^32 (candidate-list sizes in
    practice): CPython would use multi-word ``getrandbits`` beyond that.
    """
    bits = 0
    value = n
    while value > 0:
        value >>= 1
        bits += 1
    shift = np.uint64(32 - bits)
    bound = np.uint64(n)
    result = mt_genrand(key, pos) >> shift
    while result >= bound:
        result = mt_genrand(key, pos) >> shift
    return np.int64(result)


def mt_export(rng: random.Random) -> Tuple[np.ndarray, np.ndarray, tuple]:
    """Snapshot ``rng``'s state as kernel-ready arrays.

    Returns ``(key, pos, meta)``: the 624-word key as ``uint64``, the cursor
    as a 1-element ``int64`` array, and the opaque remainder of
    ``getstate()`` (version, cached gauss value) to restore verbatim.
    """
    version, internal, gauss = rng.getstate()
    key = np.array(internal[:_N], dtype=np.uint64)
    pos = np.array([internal[_N]], dtype=np.int64)
    return key, pos, (version, gauss)


def mt_restore(rng: random.Random, key: np.ndarray, pos: np.ndarray, meta: tuple) -> None:
    """Push a kernel-advanced state back into ``rng`` (inverse of :func:`mt_export`)."""
    version, gauss = meta
    rng.setstate((version, tuple(int(word) for word in key) + (int(pos[0]),), gauss))
