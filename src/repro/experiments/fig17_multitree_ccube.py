"""Fig. 17 — TACOS vs. MultiTree (2D Torus / Mesh) and vs. C-Cube (DGX-1).

Part (a) sweeps the All-Reduce size on a 2D Torus and a 2D Mesh
(alpha = 0.15 us, 1/beta = 16 GB/s) comparing MultiTree, Themis, TACOS and
the ideal bound — MultiTree saturates once the collective outgrows a single
chunk because it cannot overlap chunks.  Part (b) compares C-Cube, Ring, and
TACOS on a DGX-1 (alpha = 0.7 us, 1/beta = 25 GB/s).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.ccube import ccube_all_reduce
from repro.baselines.multitree import multitree_all_reduce
from repro.baselines.themis import themis_all_reduce
from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    Measurement,
    ideal_all_reduce_measurement,
    measure_baseline_all_reduce,
    measure_tacos_all_reduce,
)
from repro.simulator.adapters import simulate_schedule
from repro.topology.builders.dgx1 import build_dgx1
from repro.topology.builders.mesh import build_mesh_2d
from repro.topology.builders.torus import build_torus_2d
from repro.topology.topology import Topology

__all__ = ["run_multitree_comparison", "run_ccube_comparison"]

#: Link parameters of the MultiTree comparison (Fig. 17a).
FIG17A_ALPHA = 0.15e-6
FIG17A_BANDWIDTH_GBPS = 16.0

#: Link parameters of the C-Cube comparison (Fig. 17b).
FIG17B_ALPHA = 0.7e-6
FIG17B_BANDWIDTH_GBPS = 25.0


def _measure_schedule(label: str, topology: Topology, schedule, collective_size: float) -> Measurement:
    result = simulate_schedule(topology, schedule)
    return Measurement(
        algorithm=label,
        topology=topology.name,
        collective_size=collective_size,
        collective_time=result.completion_time,
        bandwidth_gbps=result.collective_bandwidth() / 1e9,
        extras={"avg_link_utilization": result.average_link_utilization()},
    )


def run_multitree_comparison(
    *,
    side: int = 4,
    collective_sizes: Sequence[float] = (1e6, 4e6, 32e6),
    chunks_per_npu: int = 4,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[str, Dict[float, List[Measurement]]]:
    """Fig. 17(a): MultiTree vs. Themis vs. TACOS on a 2D Torus and a 2D Mesh."""
    topologies = {
        "2D Torus": (
            build_torus_2d(side, side, alpha=FIG17A_ALPHA, bandwidth_gbps=FIG17A_BANDWIDTH_GBPS),
            (side, side),
        ),
        "2D Mesh": (
            build_mesh_2d(side, side, alpha=FIG17A_ALPHA, bandwidth_gbps=FIG17A_BANDWIDTH_GBPS),
            (side, side),
        ),
    }
    results: Dict[str, Dict[float, List[Measurement]]] = {}
    for label, (topology, dims) in topologies.items():
        per_size: Dict[float, List[Measurement]] = {}
        for size in collective_sizes:
            rows = [
                _measure_schedule(
                    "MultiTree",
                    topology,
                    multitree_all_reduce(topology, size, chunks_per_npu=chunks_per_npu),
                    size,
                ),
                _measure_schedule(
                    "Themis",
                    topology,
                    themis_all_reduce(dims, size, chunks_per_npu=chunks_per_npu),
                    size,
                ),
                measure_tacos_all_reduce(
                    topology, size, chunks_per_npu=chunks_per_npu, config=synthesis_config
                ),
                ideal_all_reduce_measurement(topology, size),
            ]
            per_size[size] = rows
        results[label] = per_size
    return results


def run_ccube_comparison(
    *,
    collective_sizes: Sequence[float] = (512e6, 1e9, 2e9),
    chunks_per_npu: int = 2,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[float, List[Measurement]]:
    """Fig. 17(b): C-Cube vs. Ring vs. TACOS on the DGX-1 topology."""
    topology = build_dgx1(alpha=FIG17B_ALPHA, bandwidth_gbps=FIG17B_BANDWIDTH_GBPS)
    results: Dict[float, List[Measurement]] = {}
    for size in collective_sizes:
        rows = [
            _measure_schedule(
                "C-Cube",
                topology,
                ccube_all_reduce(size, chunks_per_npu=chunks_per_npu, topology=topology),
                size,
            ),
            measure_baseline_all_reduce("Ring", topology, size, chunks_per_npu=chunks_per_npu),
            measure_tacos_all_reduce(
                topology, size, chunks_per_npu=chunks_per_npu, config=synthesis_config
            ),
            ideal_all_reduce_measurement(topology, size),
        ]
        results[size] = rows
    return results


def main() -> None:  # pragma: no cover - convenience CLI
    for label, per_size in run_multitree_comparison().items():
        for size, rows in per_size.items():
            summary = ", ".join(f"{r.algorithm}={r.bandwidth_gbps:.1f}" for r in rows)
            print(f"{label} {size / 1e6:.0f}MB: {summary}")
    for size, rows in run_ccube_comparison().items():
        summary = ", ".join(f"{r.algorithm}={r.bandwidth_gbps:.1f}" for r in rows)
        print(f"DGX-1 {size / 1e6:.0f}MB: {summary}")


if __name__ == "__main__":  # pragma: no cover
    main()
