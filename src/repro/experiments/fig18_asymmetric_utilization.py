"""Fig. 18 — link utilization on symmetric vs. asymmetric topologies.

The link-utilization timeline of TACOS and Ring All-Reduce is recorded on a
symmetric 3D Torus and on two asymmetric topologies (2D Mesh and 3D
Hypercube).  On the torus TACOS sustains ~100% utilization; on the asymmetric
topologies the start/end ramps are unavoidable but TACOS still saturates the
links in between, unlike Ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.ideal import ideal_all_reduce_bandwidth
from repro.analysis.utilization import normalized_timeline
from repro.baselines.ring import ring_all_reduce
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.topology.builders.hypercube import build_hypercube_3d
from repro.topology.builders.mesh import build_mesh_2d
from repro.topology.builders.torus import build_torus
from repro.topology.topology import Topology

__all__ = ["Fig18Trace", "run", "default_topologies"]


@dataclass
class Fig18Trace:
    """Utilization trace and efficiency summary for one (topology, algorithm)."""

    topology: str
    algorithm: str
    normalized_times: np.ndarray
    utilization: np.ndarray
    average_utilization: float
    efficiency_vs_ideal: float


def default_topologies(*, torus_side: int = 4, mesh_side: int = 6, hypercube_side: int = 4) -> List[Topology]:
    """Scaled-down versions of the paper's 3D Torus (5^3), 2D Mesh (10x10), 3D HC (5^3)."""
    return [
        build_torus((torus_side, torus_side, torus_side)),
        build_mesh_2d(mesh_side, mesh_side),
        build_hypercube_3d(hypercube_side, hypercube_side, hypercube_side),
    ]


def run(
    *,
    collective_size: float = 1e9,
    chunks_per_npu: int = 2,
    num_samples: int = 100,
    topologies: Optional[List[Topology]] = None,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[Fig18Trace]:
    """Reproduce Fig. 18: utilization timelines of TACOS and Ring per topology."""
    topologies = topologies if topologies is not None else default_topologies()
    synthesizer = TacosSynthesizer(synthesis_config)
    traces: List[Fig18Trace] = []
    for topology in topologies:
        ideal_bandwidth = ideal_all_reduce_bandwidth(topology, collective_size)
        tacos_algorithm = synthesizer.synthesize(
            topology, AllReduce(topology.num_npus, chunks_per_npu), collective_size
        )
        tacos_result = simulate_algorithm(topology, tacos_algorithm)
        reference = tacos_result.completion_time
        ring_result = simulate_schedule(
            topology,
            ring_all_reduce(topology.num_npus, collective_size, chunks_per_npu=chunks_per_npu),
        )
        for algorithm, result in (("TACOS", tacos_result), ("Ring", ring_result)):
            times, utilization = normalized_timeline(result, reference, num_samples=num_samples)
            traces.append(
                Fig18Trace(
                    topology=topology.name,
                    algorithm=algorithm,
                    normalized_times=times,
                    utilization=utilization,
                    average_utilization=result.average_link_utilization(),
                    efficiency_vs_ideal=result.collective_bandwidth() / ideal_bandwidth,
                )
            )
    return traces


def main() -> None:  # pragma: no cover - convenience CLI
    for trace in run():
        print(
            f"{trace.topology:<22} {trace.algorithm:<6} "
            f"avg util={trace.average_utilization * 100:.1f}% "
            f"efficiency={trace.efficiency_vs_ideal * 100:.1f}%"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
