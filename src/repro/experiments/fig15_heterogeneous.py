"""Fig. 15 — All-Reduce on heterogeneous/asymmetric topologies.

Three systems are evaluated: a DragonFly (4 x 5, [400, 200] GB/s), a 2D
Switch (8 x 4, [300, 25] GB/s), and a 3D-RFS (2 x 4 x 8, [200, 100, 50] GB/s).
For each, the All-Reduce bandwidth of Ring, Direct, the TACCL-like
synthesizer, TACOS, and the theoretical ideal is reported (part a), along
with the average link utilization of each algorithm (part b).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    Measurement,
    ideal_all_reduce_measurement,
    measure_baseline_all_reduce,
    measure_tacos_all_reduce,
    measure_taccl_like_all_reduce,
)
from repro.topology.builders.dragonfly import build_dragonfly
from repro.topology.builders.multidim import build_2d_switch, build_3d_rfs
from repro.topology.topology import Topology

__all__ = ["default_topologies", "run"]


def default_topologies() -> List[Topology]:
    """The three heterogeneous systems of Fig. 15 with the paper's bandwidths."""
    return [
        build_dragonfly(4, 5, local_bandwidth_gbps=400.0, global_bandwidth_gbps=200.0),
        build_2d_switch(8, 4, bandwidths_gbps=(300.0, 25.0)),
        build_3d_rfs(2, 4, 8, bandwidths_gbps=(200.0, 100.0, 50.0)),
    ]


def run(
    *,
    collective_size: float = 1e9,
    tacos_chunks_per_npu: int = 2,
    taccl_restarts: int = 5,
    topologies: Optional[List[Topology]] = None,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[str, List[Measurement]]:
    """Reproduce Fig. 15(a)/(b): bandwidth and link utilization per algorithm."""
    topologies = topologies if topologies is not None else default_topologies()
    if synthesis_config is None:
        # The paper's randomized search keeps the best of several trials; a
        # single trial leaves the heterogeneous comparisons hostage to one
        # RNG draw.
        synthesis_config = SynthesisConfig(trials=8)
    results: Dict[str, List[Measurement]] = {}
    for topology in topologies:
        rows: List[Measurement] = [
            measure_baseline_all_reduce("Ring", topology, collective_size),
            measure_baseline_all_reduce("Direct", topology, collective_size),
            measure_taccl_like_all_reduce(
                topology, collective_size, restarts=taccl_restarts
            ),
            measure_tacos_all_reduce(
                topology,
                collective_size,
                chunks_per_npu=tacos_chunks_per_npu,
                config=synthesis_config,
            ),
            ideal_all_reduce_measurement(topology, collective_size),
        ]
        results[topology.name] = rows
    return results


def main() -> None:  # pragma: no cover - convenience CLI
    from repro.experiments.common import format_table

    for topology_name, rows in run().items():
        print(format_table(rows, title=f"Fig. 15 — {topology_name}"))
        ideal = rows[-1].bandwidth_gbps
        tacos = next(row for row in rows if row.algorithm == "TACOS")
        print(f"TACOS efficiency vs ideal: {tacos.bandwidth_gbps / ideal * 100:.1f}%")
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
