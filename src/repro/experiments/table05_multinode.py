"""Table V — multi-node 3D-RFS scaling (16 to 128 NPUs).

The 3D-RFS system (Ring x FC x Switch) is scaled by growing the last
(switch / node) dimension.  For each size the All-Reduce collective time of
TACOS, the TACCL-like synthesizer, Ring, RHD, and Direct is measured and
normalized over TACOS, together with the synthesis times of the two
synthesizers — reproducing the structure of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    Measurement,
    ideal_all_reduce_measurement,
    measure_baseline_all_reduce,
    measure_tacos_all_reduce,
    measure_taccl_like_all_reduce,
)
from repro.topology.builders.multidim import build_3d_rfs

__all__ = ["Table5Row", "run"]


@dataclass
class Table5Row:
    """One row of Table V (one system size)."""

    num_nodes: int
    num_npus: int
    measurements: List[Measurement]

    def normalized_times(self) -> Dict[str, float]:
        """Collective times normalized over the TACOS time (the table's format)."""
        tacos = next(m for m in self.measurements if m.algorithm == "TACOS")
        return {
            m.algorithm: m.collective_time / tacos.collective_time for m in self.measurements
        }

    def synthesis_times(self) -> Dict[str, float]:
        """Synthesis wall-clock seconds for the synthesizers in this row."""
        return {
            m.algorithm: m.synthesis_seconds
            for m in self.measurements
            if m.synthesis_seconds is not None
        }


def run(
    *,
    node_counts: Sequence[int] = (2, 4, 8),
    collective_size: float = 256e6,
    tacos_chunks_per_npu: int = 1,
    taccl_restarts: int = 5,
    taccl_max_npus: int = 64,
    bandwidths_gbps: Sequence[float] = (200.0, 100.0, 50.0),
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[Table5Row]:
    """Reproduce Table V for the given node counts (each node adds 8 NPUs).

    ``taccl_max_npus`` mirrors the paper: beyond that size the TACCL-like
    synthesis is skipped (the real TACCL became intractable at 128 NPUs).
    """
    rows: List[Table5Row] = []
    for nodes in node_counts:
        topology = build_3d_rfs(2, 4, nodes, bandwidths_gbps=bandwidths_gbps)
        measurements: List[Measurement] = [
            measure_tacos_all_reduce(
                topology,
                collective_size,
                chunks_per_npu=tacos_chunks_per_npu,
                config=synthesis_config,
            )
        ]
        if topology.num_npus <= taccl_max_npus:
            measurements.append(
                measure_taccl_like_all_reduce(
                    topology, collective_size, restarts=taccl_restarts
                )
            )
        measurements.append(measure_baseline_all_reduce("Ring", topology, collective_size))
        if topology.num_npus & (topology.num_npus - 1) == 0:
            measurements.append(measure_baseline_all_reduce("RHD", topology, collective_size))
        measurements.append(measure_baseline_all_reduce("Direct", topology, collective_size))
        measurements.append(ideal_all_reduce_measurement(topology, collective_size))
        rows.append(Table5Row(num_nodes=nodes, num_npus=topology.num_npus, measurements=measurements))
    return rows


def main() -> None:  # pragma: no cover - convenience CLI
    for row in run():
        print(f"# {row.num_npus} NPUs ({row.num_nodes} nodes)")
        for algorithm, normalized in row.normalized_times().items():
            print(f"  {algorithm:<12} {normalized:.2f}x TACOS")
        for algorithm, seconds in row.synthesis_times().items():
            print(f"  {algorithm:<12} synthesis {seconds:.3f}s")
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
