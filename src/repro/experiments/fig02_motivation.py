"""Fig. 2 — motivation: All-Reduce bandwidth of basic algorithms.

Part (a) measures the All-Reduce bandwidth of Ring, Direct, RHD, and DBT on
four 64-NPU topologies (Ring, FullyConnected, 2D Mesh, 3D Hypercube), plus
the TACOS-synthesized algorithm on the two asymmetric topologies.  Part (b)
sweeps the collective size on a 128-NPU Ring (alpha = 30 ns,
1/beta = 150 GB/s) to show that the best algorithm also depends on the
collective size (Direct wins for latency-bound 1 KB collectives).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    Measurement,
    ideal_all_reduce_measurement,
    measure_baseline_all_reduce,
    measure_tacos_all_reduce,
)
from repro.topology.builders.fully_connected import build_fully_connected
from repro.topology.builders.hypercube import build_hypercube_3d
from repro.topology.builders.mesh import build_mesh_2d
from repro.topology.builders.ring import build_ring
from repro.topology.topology import Topology

__all__ = ["run_topology_sweep", "run_size_sweep"]

#: Basic algorithms of Fig. 2 (RHD/DBT need power-of-two NPU counts).
BASIC_ALGORITHMS = ("Ring", "Direct", "RHD", "DBT")


def _fig2a_topologies(num_npus: int) -> List[Topology]:
    side = int(round(num_npus ** 0.5))
    if side * side != num_npus:
        raise ValueError(f"num_npus must be a perfect square, got {num_npus}")
    depth = int(round(num_npus ** (1.0 / 3.0)))
    while num_npus % depth != 0:
        depth -= 1
    rest = num_npus // depth
    width = int(round(rest ** 0.5))
    while rest % width != 0:
        width -= 1
    return [
        build_ring(num_npus),
        build_fully_connected(num_npus),
        build_mesh_2d(side, side),
        build_hypercube_3d(width, rest // width, depth),
    ]


def run_topology_sweep(
    *,
    num_npus: int = 64,
    collective_size: float = 1e9,
    tacos_chunks_per_npu: int = 2,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[str, List[Measurement]]:
    """Fig. 2(a): basic algorithms across topologies, plus TACOS on Mesh / Hypercube."""
    results: Dict[str, List[Measurement]] = {}
    for topology in _fig2a_topologies(num_npus):
        rows: List[Measurement] = []
        for algorithm in BASIC_ALGORITHMS:
            rows.append(measure_baseline_all_reduce(algorithm, topology, collective_size))
        if "Mesh" in topology.name or "Hypercube" in topology.name:
            rows.append(
                measure_tacos_all_reduce(
                    topology,
                    collective_size,
                    chunks_per_npu=tacos_chunks_per_npu,
                    config=synthesis_config,
                )
            )
        rows.append(ideal_all_reduce_measurement(topology, collective_size))
        results[topology.name] = rows
    return results


def run_size_sweep(
    *,
    num_npus: int = 128,
    collective_sizes: Optional[List[float]] = None,
    alpha: float = 30e-9,
    bandwidth_gbps: float = 150.0,
) -> Dict[float, List[Measurement]]:
    """Fig. 2(b): basic algorithms on a Ring for varying collective sizes."""
    sizes = collective_sizes if collective_sizes is not None else [1e3, 512e3, 1e6, 1e9]
    topology = build_ring(num_npus, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    results: Dict[float, List[Measurement]] = {}
    for size in sizes:
        rows = [
            measure_baseline_all_reduce(algorithm, topology, size)
            for algorithm in BASIC_ALGORITHMS
        ]
        results[size] = rows
    return results


def main() -> None:  # pragma: no cover - convenience CLI
    from repro.experiments.common import format_table

    for topology_name, rows in run_topology_sweep(num_npus=16).items():
        print(format_table(rows, title=f"Fig. 2(a) — {topology_name}"))
        print()
    for size, rows in run_size_sweep(num_npus=32).items():
        print(format_table(rows, title=f"Fig. 2(b) — {size / 1e6:.3f} MB"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
