"""Paper-reproduction experiments: one module per table or figure.

See DESIGN.md for the experiment index (which module reproduces which table
or figure with which parameters) and EXPERIMENTS.md for measured results.
"""

from repro.experiments import (
    fig01_heatmap,
    fig02_motivation,
    fig10_topologies,
    fig14_mesh_synthesis,
    fig15_heterogeneous,
    fig16_themis,
    fig17_multitree_ccube,
    fig18_asymmetric_utilization,
    fig19_scalability,
    fig20_end_to_end,
    fig21_breakdown,
    table05_multinode,
)
from repro.experiments.common import (
    Measurement,
    format_table,
    ideal_all_reduce_measurement,
    measure_baseline_all_reduce,
    measure_tacos_all_reduce,
    measure_taccl_like_all_reduce,
)

__all__ = [
    "Measurement",
    "fig01_heatmap",
    "fig02_motivation",
    "fig10_topologies",
    "fig14_mesh_synthesis",
    "fig15_heterogeneous",
    "fig16_themis",
    "fig17_multitree_ccube",
    "fig18_asymmetric_utilization",
    "fig19_scalability",
    "fig20_end_to_end",
    "fig21_breakdown",
    "format_table",
    "ideal_all_reduce_measurement",
    "measure_baseline_all_reduce",
    "measure_tacos_all_reduce",
    "measure_taccl_like_all_reduce",
    "table05_multinode",
]
