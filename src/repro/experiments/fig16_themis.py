"""Fig. 16 — TACOS vs. BlueConnect and Themis on 3D Torus / 3D Hypercube.

Part (a) sweeps the All-Reduce size on both topologies and compares the
bandwidth of BlueConnect (4 chunks), Themis (4 and a higher chunk count),
TACOS (4 chunks), and the ideal bound.  Part (b) records the link-utilization
timeline of TACOS and Themis on both topologies (normalized by the TACOS
collective time), exposing Themis' utilization collapse on the asymmetric
hypercube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.utilization import normalized_timeline
from repro.baselines.blueconnect import blueconnect_all_reduce
from repro.baselines.themis import themis_all_reduce
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.experiments.common import (
    Measurement,
    ideal_all_reduce_measurement,
    measure_tacos_all_reduce,
)
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.topology.builders.hypercube import build_hypercube_3d
from repro.topology.builders.torus import build_torus
from repro.topology.topology import Topology

__all__ = ["UtilizationTrace", "run_bandwidth_sweep", "run_utilization"]

#: Default link parameters of the Fig. 16 experiments.
FIG16_ALPHA = 0.7e-6
FIG16_BANDWIDTH_GBPS = 25.0


def default_topologies(side: int = 4) -> Dict[str, Tuple[Topology, Tuple[int, int, int]]]:
    """The symmetric 3D Torus and asymmetric 3D Hypercube, with their dims."""
    dims = (side, side, side)
    return {
        "3D Torus": (build_torus(dims, alpha=FIG16_ALPHA, bandwidth_gbps=FIG16_BANDWIDTH_GBPS), dims),
        "3D Hypercube": (
            build_hypercube_3d(*dims, alpha=FIG16_ALPHA, bandwidth_gbps=FIG16_BANDWIDTH_GBPS),
            dims,
        ),
    }


def _measure_hierarchical(
    name: str,
    builder,
    dims: Sequence[int],
    topology: Topology,
    collective_size: float,
    chunks_per_npu: int,
) -> Measurement:
    schedule = builder(dims, collective_size, chunks_per_npu=chunks_per_npu)
    result = simulate_schedule(topology, schedule)
    return Measurement(
        algorithm=f"{name} ({chunks_per_npu} chunks)",
        topology=topology.name,
        collective_size=collective_size,
        collective_time=result.completion_time,
        bandwidth_gbps=result.collective_bandwidth() / 1e9,
        extras={"avg_link_utilization": result.average_link_utilization()},
    )


def run_bandwidth_sweep(
    *,
    side: int = 4,
    collective_sizes: Sequence[float] = (64e6, 512e6, 1e9, 2e9),
    themis_high_chunks: int = 16,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[str, Dict[float, List[Measurement]]]:
    """Fig. 16(a): All-Reduce bandwidth vs. collective size on both topologies."""
    results: Dict[str, Dict[float, List[Measurement]]] = {}
    for label, (topology, dims) in default_topologies(side).items():
        per_size: Dict[float, List[Measurement]] = {}
        for size in collective_sizes:
            rows = [
                _measure_hierarchical("BlueConnect", blueconnect_all_reduce, dims, topology, size, 4),
                _measure_hierarchical("Themis", themis_all_reduce, dims, topology, size, 4),
                _measure_hierarchical(
                    "Themis", themis_all_reduce, dims, topology, size, themis_high_chunks
                ),
                measure_tacos_all_reduce(
                    topology, size, chunks_per_npu=4, config=synthesis_config,
                    label="TACOS (4 chunks)",
                ),
                ideal_all_reduce_measurement(topology, size),
            ]
            per_size[size] = rows
        results[label] = per_size
    return results


@dataclass
class UtilizationTrace:
    """Normalized-time utilization series for one algorithm on one topology."""

    topology: str
    algorithm: str
    normalized_times: np.ndarray
    utilization: np.ndarray
    average_utilization: float


def run_utilization(
    *,
    side: int = 4,
    collective_size: float = 1e9,
    num_samples: int = 100,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[UtilizationTrace]:
    """Fig. 16(b): link utilization over the collective duration (TACOS vs. Themis)."""
    traces: List[UtilizationTrace] = []
    synthesizer = TacosSynthesizer(synthesis_config)
    for label, (topology, dims) in default_topologies(side).items():
        tacos_algorithm = synthesizer.synthesize(
            topology, AllReduce(topology.num_npus, 4), collective_size
        )
        tacos_result = simulate_algorithm(topology, tacos_algorithm)
        reference = tacos_result.completion_time

        themis_result = simulate_schedule(
            topology, themis_all_reduce(dims, collective_size, chunks_per_npu=4)
        )
        for algorithm, result in (("TACOS", tacos_result), ("Themis", themis_result)):
            times, utilization = normalized_timeline(
                result, reference, num_samples=num_samples
            )
            traces.append(
                UtilizationTrace(
                    topology=label,
                    algorithm=algorithm,
                    normalized_times=times,
                    utilization=utilization,
                    average_utilization=result.average_link_utilization(),
                )
            )
    return traces


def main() -> None:  # pragma: no cover - convenience CLI
    sweep = run_bandwidth_sweep(collective_sizes=(64e6, 1e9))
    for topology, per_size in sweep.items():
        for size, rows in per_size.items():
            ideal = rows[-1].bandwidth_gbps
            summary = ", ".join(
                f"{row.algorithm}={row.bandwidth_gbps:.1f}GB/s" for row in rows[:-1]
            )
            print(f"{topology} {size / 1e6:.0f}MB: {summary} (ideal {ideal:.1f})")


if __name__ == "__main__":  # pragma: no cover
    main()
