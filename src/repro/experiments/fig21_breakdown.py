"""Fig. 21 — training-time breakdown of ResNet-50 and MSFT-1T on a 3D Torus.

For each model and collective algorithm (Ring, Themis, TACOS, Ideal) the
per-iteration training time is broken into forward compute, backward compute,
and the exposed weight-gradient (and, for the hybrid-parallel MSFT-1T, input
gradient) communication — all normalized over the Ring result, matching the
paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SynthesisConfig
from repro.experiments.fig20_end_to_end import collective_time_provider
from repro.topology.builders.torus import build_torus
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismStrategy
from repro.workloads.training import TrainingBreakdown, training_iteration_time

__all__ = ["Fig21Row", "run", "normalized_over_ring"]


@dataclass
class Fig21Row:
    """Breakdown of one (model, algorithm) pair on the 3D Torus."""

    model: str
    algorithm: str
    breakdown: TrainingBreakdown

    @property
    def total_time(self) -> float:
        return self.breakdown.total


def run(
    *,
    torus_dims: Tuple[int, int, int] = (4, 4, 4),
    algorithms: Sequence[str] = ("Ring", "Themis", "TACOS", "Ideal"),
    chunks_per_npu: int = 2,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[Fig21Row]:
    """Reproduce Fig. 21 on a scaled-down 3D Torus (the paper uses 1,024 NPUs)."""
    topology = build_torus(torus_dims)
    rows: List[Fig21Row] = []
    model_strategies = {
        "ResNet-50": ParallelismStrategy("data", topology.num_npus),
        "MSFT-1T": ParallelismStrategy("hybrid", topology.num_npus),
    }
    for model_name, strategy in model_strategies.items():
        model = get_model(model_name)
        for algorithm in algorithms:
            provider = collective_time_provider(
                algorithm,
                topology,
                torus_dims,
                chunks_per_npu=chunks_per_npu,
                synthesis_config=synthesis_config,
            )
            breakdown = training_iteration_time(model, strategy, provider)
            rows.append(Fig21Row(model=model_name, algorithm=algorithm, breakdown=breakdown))
    return rows


def normalized_over_ring(rows: Sequence[Fig21Row]) -> Dict[str, Dict[str, TrainingBreakdown]]:
    """Breakdowns normalized over the Ring total, grouped per model (the figure's bars)."""
    grouped: Dict[str, Dict[str, Fig21Row]] = {}
    for row in rows:
        grouped.setdefault(row.model, {})[row.algorithm] = row
    normalized: Dict[str, Dict[str, TrainingBreakdown]] = {}
    for model, per_algorithm in grouped.items():
        reference = per_algorithm["Ring"].total_time
        normalized[model] = {
            algorithm: row.breakdown.normalized_by(reference)
            for algorithm, row in per_algorithm.items()
        }
    return normalized


def main() -> None:  # pragma: no cover - convenience CLI
    rows = run()
    for model, per_algorithm in normalized_over_ring(rows).items():
        for algorithm, breakdown in per_algorithm.items():
            print(
                f"{model:<10} {algorithm:<8} total={breakdown.total:.3f} "
                f"(compute={breakdown.compute:.3f}, exposed comm={breakdown.exposed_communication:.3f})"
            )


if __name__ == "__main__":  # pragma: no cover
    main()
