"""Fig. 1 — link-load heat maps of basic algorithms vs. TACOS.

For every topology (FullyConnected, Ring, 2D Mesh, 3D Hypercube) a 1 GB
All-Reduce is executed with the Direct, RHD, and Ring basic algorithms and
with the TACOS-synthesized algorithm.  The per-link total message size,
normalized per topology, forms the heat map; topology-aware algorithms show
balanced (cool) maps while mismatched algorithms oversubscribe a few links
and leave others idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.heatmap import link_load_matrix, link_load_statistics
from repro.baselines.registry import build_baseline_all_reduce
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.topology.builders.fully_connected import build_fully_connected
from repro.topology.builders.hypercube import build_hypercube_3d
from repro.topology.builders.mesh import build_mesh_2d
from repro.topology.builders.ring import build_ring
from repro.topology.topology import Topology

__all__ = ["HeatmapCell", "run", "default_topologies"]

#: Algorithms shown in the figure, in the paper's order.
ALGORITHMS = ("Direct", "RHD", "Ring", "TACOS")


@dataclass
class HeatmapCell:
    """Heat map and load statistics for one (topology, algorithm) pair."""

    topology: str
    algorithm: str
    matrix: np.ndarray
    statistics: Dict[str, float]


def default_topologies(num_npus: int = 16) -> List[Topology]:
    """The four topologies of Fig. 1, scaled to ``num_npus`` endpoints.

    ``num_npus`` must be a perfect square (for the 2D mesh); the 3D hypercube
    uses a near-cubic factorization.
    """
    side = int(round(num_npus ** 0.5))
    if side * side != num_npus:
        raise ValueError(f"num_npus must be a perfect square for the 2D mesh, got {num_npus}")
    depth = max(2, int(round(num_npus ** (1.0 / 3.0))))
    while num_npus % depth != 0:
        depth -= 1
    rest = num_npus // depth
    width = int(round(rest ** 0.5))
    while rest % width != 0:
        width -= 1
    return [
        build_fully_connected(num_npus),
        build_ring(num_npus),
        build_mesh_2d(side, side),
        build_hypercube_3d(width, rest // width, depth),
    ]


def run(
    *,
    num_npus: int = 16,
    collective_size: float = 1e9,
    topologies: Optional[List[Topology]] = None,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[HeatmapCell]:
    """Reproduce Fig. 1: per-link load heat maps for each algorithm and topology."""
    topologies = topologies if topologies is not None else default_topologies(num_npus)
    synthesizer = TacosSynthesizer(synthesis_config)
    cells: List[HeatmapCell] = []
    for topology in topologies:
        for algorithm in ALGORITHMS:
            if algorithm == "TACOS":
                synthesized = synthesizer.synthesize(
                    topology, AllReduce(topology.num_npus), collective_size
                )
                result = simulate_algorithm(topology, synthesized)
            else:
                schedule = build_baseline_all_reduce(algorithm, topology, collective_size)
                result = simulate_schedule(topology, schedule)
            cells.append(
                HeatmapCell(
                    topology=topology.name,
                    algorithm=algorithm,
                    matrix=link_load_matrix(result, topology),
                    statistics=link_load_statistics(result, topology),
                )
            )
    return cells


def main() -> None:  # pragma: no cover - convenience CLI
    for cell in run():
        stats = cell.statistics
        print(
            f"{cell.topology:<22} {cell.algorithm:<8} "
            f"imbalance={stats['imbalance']:.2f} idle_fraction={stats['idle_fraction']:.2f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
