"""Shared helpers for the paper-reproduction experiments.

Every ``figXX_*`` / ``tableXX_*`` module builds its workload with these
helpers so that algorithms are always compared the same way.  Since the
declarative Run API landed, each helper expresses its measurement as a
:class:`~repro.api.specs.RunSpec` and executes it through
:func:`repro.api.run` — the same path the CLI and batch sweeps use — so a
figure's data point is always reproducible from a JSON document:

* baselines are generated as logical schedules and timed by the
  congestion-aware simulator;
* TACOS algorithms are synthesized, verified, and timed by the same
  simulator;
* the ideal bound comes from :mod:`repro.analysis.ideal`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.runner import RunResult, run
from repro.api.specs import AlgorithmSpec, CollectiveSpec, RunSpec, topology_to_spec
from repro.core.config import SynthesisConfig
from repro.errors import ReproError
from repro.topology.topology import Topology

__all__ = [
    "Measurement",
    "measurement_from_run",
    "run_spec_for_all_reduce",
    "measure_baseline_all_reduce",
    "measure_tacos_all_reduce",
    "measure_taccl_like_all_reduce",
    "ideal_all_reduce_measurement",
    "format_table",
]


@dataclass
class Measurement:
    """One (algorithm, topology, collective size) data point.

    Attributes
    ----------
    algorithm:
        Algorithm label (e.g. ``"Ring"``, ``"TACOS"``, ``"Ideal"``).
    topology:
        Topology name.
    collective_size:
        Per-NPU collective size in bytes.
    collective_time:
        Simulated (or bound) collective completion time in seconds.
    bandwidth_gbps:
        Collective bandwidth in GB/s.
    synthesis_seconds:
        Synthesis wall-clock time, when the algorithm was synthesized.
    extras:
        Additional metrics (e.g. average link utilization).
    """

    algorithm: str
    topology: str
    collective_size: float
    collective_time: float
    bandwidth_gbps: float
    synthesis_seconds: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def efficiency_vs(self, ideal_bandwidth_gbps: float) -> float:
        """Fraction of the ideal bandwidth achieved."""
        if ideal_bandwidth_gbps <= 0:
            raise ReproError("ideal bandwidth must be positive")
        return self.bandwidth_gbps / ideal_bandwidth_gbps


def measurement_from_run(result: RunResult, *, label: Optional[str] = None) -> Measurement:
    """Convert a Run API result into an experiment measurement row."""
    return Measurement(
        algorithm=label or result.algorithm,
        topology=result.topology,
        collective_size=result.collective_size,
        collective_time=result.collective_time,
        bandwidth_gbps=result.bandwidth_gbps,
        synthesis_seconds=result.synthesis_seconds,
        extras=dict(result.extras),
    )


def run_spec_for_all_reduce(
    algorithm: str,
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    algorithm_params: Optional[Dict] = None,
    label: str = "",
) -> RunSpec:
    """Express one experiment All-Reduce data point as a declarative spec."""
    return RunSpec(
        topology=topology_to_spec(topology),
        collective=CollectiveSpec(
            name="all_reduce",
            collective_size=collective_size,
            chunks_per_npu=chunks_per_npu,
        ),
        algorithm=AlgorithmSpec(name=algorithm, params=algorithm_params or {}),
        label=label,
    )


def measure_baseline_all_reduce(
    name: str,
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> Measurement:
    """Simulate one of the registered baseline All-Reduce algorithms."""
    spec = run_spec_for_all_reduce(
        name, topology, collective_size, chunks_per_npu=chunks_per_npu, label=name
    )
    return measurement_from_run(run(spec), label=name)


def measure_tacos_all_reduce(
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    config: Optional[SynthesisConfig] = None,
    label: str = "TACOS",
) -> Measurement:
    """Synthesize an All-Reduce with TACOS and simulate it."""
    spec = run_spec_for_all_reduce(
        "tacos",
        topology,
        collective_size,
        chunks_per_npu=chunks_per_npu,
        algorithm_params=asdict(config) if config is not None else None,
        label=label,
    )
    return measurement_from_run(run(spec), label=label)


def measure_taccl_like_all_reduce(
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    restarts: int = 10,
    label: str = "TACCL-like",
) -> Measurement:
    """Synthesize an All-Reduce with the TACCL-like baseline and simulate it."""
    spec = run_spec_for_all_reduce(
        "taccl_like",
        topology,
        collective_size,
        chunks_per_npu=chunks_per_npu,
        algorithm_params={"restarts": restarts},
        label=label,
    )
    return measurement_from_run(run(spec), label=label)


def ideal_all_reduce_measurement(topology: Topology, collective_size: float) -> Measurement:
    """Theoretical ideal All-Reduce bound as a measurement row."""
    spec = run_spec_for_all_reduce("ideal", topology, collective_size, label="Ideal")
    return measurement_from_run(run(spec), label="Ideal")


def format_table(measurements: Sequence[Measurement], *, title: str = "") -> str:
    """Render measurements as a plain-text table, one row per measurement."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    header = (
        f"{'algorithm':<16} {'topology':<26} {'size (MB)':>10} "
        f"{'time (ms)':>10} {'BW (GB/s)':>10} {'synth (s)':>10}"
    )
    lines.append(header)
    for row in measurements:
        synth = f"{row.synthesis_seconds:.3f}" if row.synthesis_seconds is not None else "-"
        lines.append(
            f"{row.algorithm:<16} {row.topology:<26} {row.collective_size / 1e6:>10.1f} "
            f"{row.collective_time * 1e3:>10.3f} {row.bandwidth_gbps:>10.2f} {synth:>10}"
        )
    return "\n".join(lines)
