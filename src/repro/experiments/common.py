"""Shared helpers for the paper-reproduction experiments.

Every ``figXX_*`` / ``tableXX_*`` module builds its workload with these
helpers so that algorithms are always compared the same way:

* baselines are generated as logical schedules and timed by the
  congestion-aware simulator;
* TACOS algorithms are synthesized, verified, and timed by the same
  simulator;
* the ideal bound comes from :mod:`repro.analysis.ideal`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.bandwidth import collective_bandwidth_gbps
from repro.analysis.ideal import ideal_all_reduce_bandwidth, ideal_all_reduce_time
from repro.baselines.registry import build_baseline_all_reduce
from repro.baselines.taccl_like import TacclLikeSynthesizer
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.errors import ReproError
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.simulator.result import SimulationResult
from repro.topology.link import GIGABYTE
from repro.topology.topology import Topology

__all__ = [
    "Measurement",
    "measure_baseline_all_reduce",
    "measure_tacos_all_reduce",
    "measure_taccl_like_all_reduce",
    "ideal_all_reduce_measurement",
    "format_table",
]


@dataclass
class Measurement:
    """One (algorithm, topology, collective size) data point.

    Attributes
    ----------
    algorithm:
        Algorithm label (e.g. ``"Ring"``, ``"TACOS"``, ``"Ideal"``).
    topology:
        Topology name.
    collective_size:
        Per-NPU collective size in bytes.
    collective_time:
        Simulated (or bound) collective completion time in seconds.
    bandwidth_gbps:
        Collective bandwidth in GB/s.
    synthesis_seconds:
        Synthesis wall-clock time, when the algorithm was synthesized.
    extras:
        Additional metrics (e.g. average link utilization).
    """

    algorithm: str
    topology: str
    collective_size: float
    collective_time: float
    bandwidth_gbps: float
    synthesis_seconds: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def efficiency_vs(self, ideal_bandwidth_gbps: float) -> float:
        """Fraction of the ideal bandwidth achieved."""
        if ideal_bandwidth_gbps <= 0:
            raise ReproError("ideal bandwidth must be positive")
        return self.bandwidth_gbps / ideal_bandwidth_gbps


def _measurement_from_result(
    label: str,
    topology: Topology,
    collective_size: float,
    result: SimulationResult,
    synthesis_seconds: Optional[float] = None,
) -> Measurement:
    return Measurement(
        algorithm=label,
        topology=topology.name,
        collective_size=collective_size,
        collective_time=result.completion_time,
        bandwidth_gbps=collective_bandwidth_gbps(result),
        synthesis_seconds=synthesis_seconds,
        extras={"avg_link_utilization": result.average_link_utilization()},
    )


def measure_baseline_all_reduce(
    name: str,
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> Measurement:
    """Simulate one of the registered baseline All-Reduce algorithms."""
    schedule = build_baseline_all_reduce(
        name, topology, collective_size, chunks_per_npu=chunks_per_npu
    )
    result = simulate_schedule(topology, schedule)
    return _measurement_from_result(name, topology, collective_size, result)


def measure_tacos_all_reduce(
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    config: Optional[SynthesisConfig] = None,
    label: str = "TACOS",
) -> Measurement:
    """Synthesize an All-Reduce with TACOS and simulate it."""
    synthesizer = TacosSynthesizer(config)
    pattern = AllReduce(topology.num_npus, chunks_per_npu)
    stats = synthesizer.synthesize_with_stats(topology, pattern, collective_size)
    result = simulate_algorithm(topology, stats.algorithm)
    return _measurement_from_result(
        label, topology, collective_size, result, synthesis_seconds=stats.wall_clock_seconds
    )


def measure_taccl_like_all_reduce(
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    restarts: int = 10,
    label: str = "TACCL-like",
) -> Measurement:
    """Synthesize an All-Reduce with the TACCL-like baseline and simulate it."""
    synthesizer = TacclLikeSynthesizer(restarts=restarts)
    result = synthesizer.synthesize_all_reduce(
        topology, collective_size, chunks_per_npu=chunks_per_npu
    )
    simulated = simulate_schedule(topology, result.schedule)
    return _measurement_from_result(
        label, topology, collective_size, simulated, synthesis_seconds=result.wall_clock_seconds
    )


def ideal_all_reduce_measurement(topology: Topology, collective_size: float) -> Measurement:
    """Theoretical ideal All-Reduce bound as a measurement row."""
    duration = ideal_all_reduce_time(topology, collective_size)
    bandwidth = ideal_all_reduce_bandwidth(topology, collective_size) / GIGABYTE
    return Measurement(
        algorithm="Ideal",
        topology=topology.name,
        collective_size=collective_size,
        collective_time=duration,
        bandwidth_gbps=bandwidth,
    )


def format_table(measurements: Sequence[Measurement], *, title: str = "") -> str:
    """Render measurements as a plain-text table, one row per measurement."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    header = (
        f"{'algorithm':<16} {'topology':<26} {'size (MB)':>10} "
        f"{'time (ms)':>10} {'BW (GB/s)':>10} {'synth (s)':>10}"
    )
    lines.append(header)
    for row in measurements:
        synth = f"{row.synthesis_seconds:.3f}" if row.synthesis_seconds is not None else "-"
        lines.append(
            f"{row.algorithm:<16} {row.topology:<26} {row.collective_size / 1e6:>10.1f} "
            f"{row.collective_time * 1e3:>10.3f} {row.bandwidth_gbps:>10.2f} {synth:>10}"
        )
    return "\n".join(lines)
