"""Fig. 14 — All-Gather algorithm synthesized for a 3x3 2D Mesh.

The experiment synthesizes the All-Gather, verifies it is contention-free,
and reports the per-time-span transfer counts — the quantity the figure
visualizes as chunks moving over the mesh at t = 0 .. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.collectives.all_gather import AllGather
from repro.core.algorithm import CollectiveAlgorithm
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.core.verification import verify_algorithm
from repro.topology.builders.mesh import build_mesh_2d

__all__ = ["Fig14Result", "run"]


@dataclass
class Fig14Result:
    """Synthesis summary for the 3x3 mesh All-Gather."""

    algorithm: CollectiveAlgorithm
    transfers_per_span: Dict[int, int]
    num_time_spans: int
    link_utilization_per_span: Dict[int, float]
    verified: bool


def run(
    *,
    rows: int = 3,
    cols: int = 3,
    collective_size: float = 9e6,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Fig14Result:
    """Reproduce Fig. 14: synthesize and analyse the mesh All-Gather."""
    topology = build_mesh_2d(rows, cols)
    pattern = AllGather(topology.num_npus)
    synthesizer = TacosSynthesizer(synthesis_config)
    algorithm = synthesizer.synthesize(topology, pattern, collective_size)
    verified = verify_algorithm(algorithm, topology, pattern)

    span_cost = topology.link(*next(iter(topology.link_keys()))).cost(
        pattern.chunk_size(collective_size)
    )
    # One vectorized pass over the start column instead of a per-transfer loop.
    import numpy as np

    spans = np.rint(algorithm.table.starts / span_cost).astype(np.int64)
    span_ids, counts = np.unique(spans, return_counts=True)
    transfers_per_span: Dict[int, int] = dict(
        zip(span_ids.tolist(), counts.tolist())
    )
    utilization = {
        span: count / topology.num_links for span, count in transfers_per_span.items()
    }
    return Fig14Result(
        algorithm=algorithm,
        transfers_per_span=dict(sorted(transfers_per_span.items())),
        num_time_spans=len(transfers_per_span),
        link_utilization_per_span=dict(sorted(utilization.items())),
        verified=verified,
    )


def main() -> None:  # pragma: no cover - convenience CLI
    result = run()
    print(f"time spans: {result.num_time_spans}, verified: {result.verified}")
    for span, count in result.transfers_per_span.items():
        print(f"  t={span}: {count} transfers ({result.link_utilization_per_span[span] * 100:.0f}% of links busy)")


if __name__ == "__main__":  # pragma: no cover
    main()
