"""Fig. 10 — All-Gather synthesis on 4-NPU topologies of decreasing connectivity.

The four targets (FullyConnected with 12 links, bidirectional Ring with 8,
the asymmetric 6-link topology of Fig. 9, and the unidirectional Ring with 4)
show how TACOS expands the TEN further as connectivity becomes scarcer while
still maximizing link utilization in every time span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.collectives.all_gather import AllGather
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.core.verification import verify_algorithm
from repro.topology.builders.fully_connected import build_fully_connected
from repro.topology.builders.ring import build_ring
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["Fig10Row", "build_asymmetric_4npu", "run"]


def build_asymmetric_4npu(
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """The 6-link asymmetric 4-NPU topology of Fig. 9(a) / Fig. 10(c).

    Links: 1<->2, 1->3, 3->1, 2->4, 4->2 (paper numbering), i.e. a partially
    connected graph where NPUs have different in/out degrees.
    """
    topology = Topology(4, name="Asymmetric4")
    pairs = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1)]
    for source, dest in pairs:
        topology.add_link(source, dest, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology


@dataclass
class Fig10Row:
    """Synthesis outcome for one of the 4-NPU target topologies."""

    topology: str
    num_links: int
    num_time_spans: int
    num_transfers: int
    collective_time: float
    verified: bool


def default_topologies() -> List[Topology]:
    """The four 4-NPU targets of Fig. 10, in decreasing connectivity order."""
    return [
        build_fully_connected(4),
        build_ring(4, bidirectional=True),
        build_asymmetric_4npu(),
        build_ring(4, bidirectional=False),
    ]


def run(
    *,
    collective_size: float = 4e6,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[Fig10Row]:
    """Reproduce Fig. 10: All-Gather synthesis across the four 4-NPU targets."""
    synthesizer = TacosSynthesizer(synthesis_config)
    rows: List[Fig10Row] = []
    for topology in default_topologies():
        pattern = AllGather(topology.num_npus)
        algorithm = synthesizer.synthesize(topology, pattern, collective_size)
        span = topology.link(*next(iter(topology.link_keys()))).cost(
            pattern.chunk_size(collective_size)
        )
        num_spans = max(1, round(algorithm.collective_time / span))
        rows.append(
            Fig10Row(
                topology=topology.name,
                num_links=topology.num_links,
                num_time_spans=num_spans,
                num_transfers=algorithm.num_transfers,
                collective_time=algorithm.collective_time,
                verified=verify_algorithm(algorithm, topology, pattern),
            )
        )
    return rows


def main() -> None:  # pragma: no cover - convenience CLI
    for row in run():
        print(
            f"{row.topology:<20} links={row.num_links:<3} spans={row.num_time_spans:<3} "
            f"transfers={row.num_transfers:<3} time={row.collective_time * 1e6:.2f}us verified={row.verified}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
