"""Fig. 19 — synthesis-time scalability of TACOS (and the TACCL-like baseline).

The paper synthesizes All-Reduce algorithms for 2D Mesh and 3D Hypercube
topologies of growing size and shows that TACOS' synthesis time grows as
O(n^2) in the number of NPUs (linear in the search space of O(n) chunks times
Theta(n) links), while the ILP-based TACCL blows up after a few tens of NPUs.

The reproduction keeps the same code path and fits the same quadratic model;
the absolute sizes are scaled down (pure-Python synthesis is slower per
step), which does not affect the complexity-trend conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.taccl_like import TacclLikeSynthesizer
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.topology.builders.hypercube import build_hypercube_3d
from repro.topology.builders.mesh import build_mesh_2d

__all__ = ["ScalabilityPoint", "run", "fit_quadratic"]


@dataclass
class ScalabilityPoint:
    """Synthesis time measured for one topology size."""

    family: str
    num_npus: int
    synthesis_seconds: float
    synthesizer: str


def fit_quadratic(points: Sequence[ScalabilityPoint]) -> Tuple[np.ndarray, float]:
    """Least-squares fit of ``time = a * n^2 + b * n + c``; returns (coefficients, R^2)."""
    sizes = np.array([point.num_npus for point in points], dtype=float)
    times = np.array([point.synthesis_seconds for point in points], dtype=float)
    design = np.vstack([sizes ** 2, sizes, np.ones_like(sizes)]).T
    coefficients, _, _, _ = np.linalg.lstsq(design, times, rcond=None)
    predictions = design @ coefficients
    residual = float(np.sum((times - predictions) ** 2))
    total = float(np.sum((times - times.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return coefficients, r_squared


def run(
    *,
    mesh_sides: Sequence[int] = (3, 4, 5, 6, 8),
    hypercube_sides: Sequence[int] = (2, 3, 4),
    collective_size: float = 64e6,
    include_taccl: bool = True,
    taccl_max_npus: int = 36,
    taccl_restarts: int = 5,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Dict[str, List[ScalabilityPoint]]:
    """Measure synthesis wall-clock time across topology sizes.

    Returns points grouped by family: ``"2D Mesh"``, ``"3D Hypercube"`` for
    TACOS, and ``"2D Mesh (TACCL-like)"`` for the baseline synthesizer on
    small meshes (mirroring the paper's left-hand plot of Fig. 19).
    """
    synthesizer = TacosSynthesizer(synthesis_config)
    results: Dict[str, List[ScalabilityPoint]] = {"2D Mesh": [], "3D Hypercube": []}

    for side in mesh_sides:
        topology = build_mesh_2d(side, side)
        stats = synthesizer.synthesize_with_stats(
            topology, AllReduce(topology.num_npus), collective_size
        )
        results["2D Mesh"].append(
            ScalabilityPoint(
                family="2D Mesh",
                num_npus=topology.num_npus,
                synthesis_seconds=stats.wall_clock_seconds,
                synthesizer="TACOS",
            )
        )

    for side in hypercube_sides:
        topology = build_hypercube_3d(side, side, side)
        stats = synthesizer.synthesize_with_stats(
            topology, AllReduce(topology.num_npus), collective_size
        )
        results["3D Hypercube"].append(
            ScalabilityPoint(
                family="3D Hypercube",
                num_npus=topology.num_npus,
                synthesis_seconds=stats.wall_clock_seconds,
                synthesizer="TACOS",
            )
        )

    if include_taccl:
        taccl_points: List[ScalabilityPoint] = []
        taccl = TacclLikeSynthesizer(restarts=taccl_restarts)
        for side in mesh_sides:
            topology = build_mesh_2d(side, side)
            if topology.num_npus > taccl_max_npus:
                continue
            result = taccl.synthesize_all_reduce(topology, collective_size)
            taccl_points.append(
                ScalabilityPoint(
                    family="2D Mesh (TACCL-like)",
                    num_npus=topology.num_npus,
                    synthesis_seconds=result.wall_clock_seconds,
                    synthesizer="TACCL-like",
                )
            )
        results["2D Mesh (TACCL-like)"] = taccl_points

    return results


def main() -> None:  # pragma: no cover - convenience CLI
    results = run()
    for family, points in results.items():
        for point in points:
            print(f"{family:<22} n={point.num_npus:<5} {point.synthesis_seconds * 1e3:.1f} ms")
        if len(points) >= 3 and "TACCL" not in family:
            _, r_squared = fit_quadratic(points)
            print(f"{family:<22} quadratic fit R^2 = {r_squared:.4f}")


if __name__ == "__main__":  # pragma: no cover
    main()
