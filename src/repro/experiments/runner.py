"""Run every paper-reproduction experiment and collect its headline numbers.

This is the module behind the ``tacos-repro`` command line tool; it runs
scaled-down versions of every experiment (suitable for a laptop) and prints a
summary that mirrors the structure of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time as _time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    fig01_heatmap,
    fig02_motivation,
    fig10_topologies,
    fig14_mesh_synthesis,
    fig15_heterogeneous,
    fig16_themis,
    fig17_multitree_ccube,
    fig18_asymmetric_utilization,
    fig19_scalability,
    fig20_end_to_end,
    fig21_breakdown,
    table05_multinode,
)

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: Mapping from experiment id to a zero-argument callable producing its data.
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig01": lambda: fig01_heatmap.run(num_npus=16),
    "fig02a": lambda: fig02_motivation.run_topology_sweep(num_npus=16),
    "fig02b": lambda: fig02_motivation.run_size_sweep(num_npus=32),
    "fig10": fig10_topologies.run,
    "fig14": fig14_mesh_synthesis.run,
    "fig15": fig15_heterogeneous.run,
    "table05": table05_multinode.run,
    "fig16a": lambda: fig16_themis.run_bandwidth_sweep(collective_sizes=(64e6, 1e9)),
    "fig16b": fig16_themis.run_utilization,
    "fig17a": fig17_multitree_ccube.run_multitree_comparison,
    "fig17b": fig17_multitree_ccube.run_ccube_comparison,
    "fig18": fig18_asymmetric_utilization.run,
    "fig19": fig19_scalability.run,
    "fig20": fig20_end_to_end.run,
    "fig21": fig21_breakdown.run,
}


def run_experiment(name: str) -> object:
    """Run a single experiment by id (e.g. ``"fig15"``) and return its data."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name]()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: run one or all experiments and print timings.

    Exit codes: 0 on success, 1 when any selected experiment raised, 2 when
    an unknown experiment id was requested.
    """
    parser = argparse.ArgumentParser(description="TACOS reproduction experiment runner")
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--workers", "-w", type=int, default=None,
        help="worker pool size for the experiments' internal fan-outs "
        "(--workers alone implies the thread backend)",
    )
    parser.add_argument(
        "--execution", choices=("serial", "thread", "process", "pool"), default=None,
        help="execution backend installed as the ambient policy while each "
        "experiment runs; experiment data is byte-identical across backends",
    )
    arguments = parser.parse_args(argv if argv is None else list(argv))
    if arguments.workers is not None and arguments.workers < 1:
        parser.error(f"--workers must be >= 1, got {arguments.workers}")

    if arguments.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    selected = list(arguments.experiments) or sorted(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; available: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2

    if arguments.workers is not None or arguments.execution is not None:
        # Install the ambient execution policy (same convention as the
        # synthesize/sweep/bench subcommands): experiments take no explicit
        # backend knobs, so their internal trial fan-outs resolve it through
        # current_execution() inside this scope.
        from repro.api.parallel import execution_scope

        scope = execution_scope(
            execution=arguments.execution, workers=arguments.workers
        )
    else:
        scope = contextlib.nullcontext()

    failed: List[str] = []
    with scope:
        for name in selected:
            started = _time.perf_counter()
            print(f"== {name} ==")
            try:
                run_experiment(name)
            except Exception:
                traceback.print_exc()
                print(f"   FAILED after {_time.perf_counter() - started:.1f}s", file=sys.stderr)
                failed.append(name)
            else:
                print(f"   completed in {_time.perf_counter() - started:.1f}s")
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
