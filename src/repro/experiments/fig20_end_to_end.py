"""Fig. 20 — end-to-end training time of GNMT, ResNet-50, and Turing-NLG.

Each model is trained data-parallel on a 3D-RFS cluster (GNMT on the small
8-node system, ResNet-50 and Turing-NLG on the larger one), with the exposed
gradient All-Reduce executed by Ring, Direct, Themis, TACOS, or the
theoretical ideal.  Training time is reported normalized over the TACOS
result, split into compute and exposed communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.ideal import ideal_all_reduce_time
from repro.baselines.registry import build_baseline_all_reduce
from repro.baselines.themis import themis_all_reduce
from repro.collectives.all_reduce import AllReduce
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.topology.builders.multidim import build_3d_rfs
from repro.topology.topology import Topology
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismStrategy
from repro.workloads.training import TrainingBreakdown, training_iteration_time

__all__ = ["Fig20Row", "run", "collective_time_provider"]


@dataclass
class Fig20Row:
    """Training-time breakdown of one (model, collective algorithm) pair."""

    model: str
    algorithm: str
    topology: str
    breakdown: TrainingBreakdown

    @property
    def total_time(self) -> float:
        return self.breakdown.total


def collective_time_provider(
    algorithm: str,
    topology: Topology,
    dims: Sequence[int],
    *,
    chunks_per_npu: int = 2,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> Callable[[str, float], float]:
    """Build a ``(pattern, size) -> seconds`` provider for one algorithm.

    Only All-Reduce is needed by the data-parallel workloads of Fig. 20/21;
    All-Gather / Reduce-Scatter requests are served as half an All-Reduce,
    matching their traffic volume.
    """

    def all_reduce_time(size: float) -> float:
        if algorithm == "Ideal":
            return ideal_all_reduce_time(topology, size)
        if algorithm == "TACOS":
            synthesized = TacosSynthesizer(synthesis_config).synthesize(
                topology, AllReduce(topology.num_npus, chunks_per_npu), size
            )
            return simulate_algorithm(topology, synthesized).completion_time
        if algorithm == "Themis":
            schedule = themis_all_reduce(dims, size, chunks_per_npu=max(chunks_per_npu, 4))
            return simulate_schedule(topology, schedule).completion_time
        schedule = build_baseline_all_reduce(algorithm, topology, size, chunks_per_npu=chunks_per_npu)
        return simulate_schedule(topology, schedule).completion_time

    def provider(pattern: str, size: float) -> float:
        if pattern == "AllReduce":
            return all_reduce_time(size)
        # All-Gather / Reduce-Scatter move half the All-Reduce volume.
        return all_reduce_time(size) / 2.0

    return provider


def run(
    *,
    algorithms: Sequence[str] = ("Ring", "Direct", "Themis", "TACOS", "Ideal"),
    small_nodes: int = 4,
    large_nodes: int = 8,
    chunks_per_npu: int = 2,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> List[Fig20Row]:
    """Reproduce Fig. 20 (scaled-down node counts by default).

    GNMT runs on the small 3D-RFS system and ResNet-50 / Turing-NLG on the
    larger one, mirroring the paper's split (8 vs. 32 nodes there).
    """
    systems: Dict[str, Tuple[Topology, Tuple[int, int, int]]] = {
        "GNMT": (build_3d_rfs(2, 4, small_nodes), (2, 4, small_nodes)),
        "ResNet-50": (build_3d_rfs(2, 4, large_nodes), (2, 4, large_nodes)),
        "Turing-NLG": (build_3d_rfs(2, 4, large_nodes), (2, 4, large_nodes)),
    }
    rows: List[Fig20Row] = []
    for model_name, (topology, dims) in systems.items():
        model = get_model(model_name)
        strategy = ParallelismStrategy("data", topology.num_npus)
        for algorithm in algorithms:
            provider = collective_time_provider(
                algorithm,
                topology,
                dims,
                chunks_per_npu=chunks_per_npu,
                synthesis_config=synthesis_config,
            )
            breakdown = training_iteration_time(model, strategy, provider)
            rows.append(
                Fig20Row(
                    model=model_name,
                    algorithm=algorithm,
                    topology=topology.name,
                    breakdown=breakdown,
                )
            )
    return rows


def normalized_over_tacos(rows: Sequence[Fig20Row]) -> Dict[str, Dict[str, float]]:
    """Total training times normalized over the TACOS row, grouped per model."""
    grouped: Dict[str, Dict[str, float]] = {}
    for row in rows:
        grouped.setdefault(row.model, {})[row.algorithm] = row.total_time
    normalized: Dict[str, Dict[str, float]] = {}
    for model, times in grouped.items():
        reference = times["TACOS"]
        normalized[model] = {algorithm: duration / reference for algorithm, duration in times.items()}
    return normalized


def main() -> None:  # pragma: no cover - convenience CLI
    rows = run()
    for model, times in normalized_over_tacos(rows).items():
        summary = ", ".join(f"{algorithm}={value:.2f}" for algorithm, value in times.items())
        print(f"{model}: {summary} (normalized over TACOS)")


if __name__ == "__main__":  # pragma: no cover
    main()
