"""Exception hierarchy for the TACOS reproduction library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch library-level problems with a single ``except`` clause while still
being able to distinguish configuration problems from synthesis or simulation
failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "CollectiveError",
    "SynthesisError",
    "SimulationError",
    "WorkloadError",
    "VerificationError",
    "SpecError",
    "RegistryError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or a builder receives bad input."""


class CollectiveError(ReproError):
    """Raised when a collective pattern is configured inconsistently."""


class SynthesisError(ReproError):
    """Raised when collective-algorithm synthesis cannot make progress."""


class SimulationError(ReproError):
    """Raised when the network simulator receives an unroutable workload."""


class WorkloadError(ReproError):
    """Raised when a training workload description is invalid."""


class VerificationError(ReproError):
    """Raised when a synthesized algorithm violates a collective contract."""


class SpecError(ReproError):
    """Raised when a declarative run specification is malformed."""


class RegistryError(ReproError):
    """Raised when a registry lookup or registration fails."""
