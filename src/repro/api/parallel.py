"""Pluggable execution backends for every fan-out site in the pipeline.

The paper's synthesizer is trial-based and embarrassingly parallel: best-of-N
synthesis, batch sweeps (:func:`repro.api.runner.run_batch`), and benchmark
grids (:mod:`repro.bench.runner`) are all independent work items.  This
module is the single seam those sites fan out through:

* :class:`SerialBackend` — a plain loop (the default);
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  (useful when the work releases the GIL, and for overlap of I/O);
* :class:`ProcessBackend` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (real multi-core parallelism for the pure-Python matching hot path);
* :class:`PoolBackend` — the persistent tier: process pools that stay warm
  across ``map`` calls (keyed by worker count, lazily forked, re-forked after
  worker death), so repeated fan-outs pay the spin-up cost once.

All backends preserve input order in the result list and propagate worker
exceptions to the caller, so swapping one for another never changes *what* is
computed — only where.  The process backend additionally requires the mapped
function and its items to be picklable; fan-out sites meet that contract with
module-level task functions and columnar byte payloads
(:meth:`repro.core.transfers.TransferTable.to_bytes`).

Call sites that cannot thread explicit knobs through their API (e.g. the
synthesizer driven via a declarative spec) consult the *ambient* policy
installed by :func:`execution_scope`; the CLI's ``--workers`` / ``--execution``
flags wrap their commands in such a scope.

Kept free of intra-package imports (except :mod:`repro.errors`) so lower
layers can import it without cycles.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.errors import ReproError

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "PoolBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "chunk_items",
    "current_execution",
    "default_worker_count",
    "effective_backend",
    "execution_scope",
    "map_parallel",
    "resolve_backend",
    "shutdown_pools",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Anything :func:`resolve_backend` accepts: a backend name, an instance, or
#: ``None`` (meaning "no explicit choice").
BackendSpec = Union[None, str, "ExecutionBackend"]


def default_worker_count() -> int:
    """Workers used when a pool size is not given: the usable CPU count."""
    try:
        return len(os.sched_getaffinity(0))  # respects cgroup/affinity limits
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _effective_workers(max_workers: Optional[int], num_items: int) -> int:
    """Pool size actually used: requested (or CPU count), capped by the items."""
    workers = max_workers if max_workers is not None else default_worker_count()
    return max(1, min(int(workers), num_items))


class ExecutionBackend:
    """Strategy object deciding *where* a fan-out's work items execute.

    Subclasses implement :meth:`map`; the contract is exactly that of
    ``list(map(fn, items))`` — input order preserved, exceptions propagated —
    regardless of the underlying concurrency.
    """

    #: Registry name (``"serial"`` / ``"thread"`` / ``"process"`` / ``"pool"``).
    name: str = "abstract"

    #: Whether items cross a process boundary (and must therefore be
    #: picklable).  Fan-out sites use this — not the name — to pick the
    #: columnar byte transport and the broadcast plane
    #: (:mod:`repro.api.broadcast`), so new process-based backends inherit
    #: the thin-submission path automatically.
    process_based: bool = False

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Iterable[_ItemT],
        *,
        max_workers: Optional[int] = None,
    ) -> List[_ResultT]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Run every item in the calling thread, one after another."""

    name = "serial"

    def map(self, fn, items, *, max_workers=None):
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Run items on a thread pool.

    Threads share the interpreter: pure-Python work gains no wall clock from
    this backend (the GIL), but kernels that release the GIL — and anything
    I/O-bound — do.  Item functions may be closures; nothing is pickled.
    """

    name = "thread"

    def map(self, fn, items, *, max_workers=None):
        items = list(items)
        workers = _effective_workers(max_workers, len(items))
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class ProcessBackend(ExecutionBackend):
    """Run items on a process pool (real multi-core parallelism).

    The mapped function and every item/result must be picklable — use
    module-level functions (or :func:`functools.partial` over them) and
    columnar byte payloads for bulky results.  Worker processes are plain
    (non-daemonic on the supported Python range, 3.9+) and may themselves
    fan out further — a benched ``ParallelScenario`` opens its own pool
    inside a ``bench --execution process`` worker.
    """

    name = "process"
    process_based = True

    def map(self, fn, items, *, max_workers=None):
        items = list(items)
        workers = _effective_workers(max_workers, len(items))
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class PoolBackend(ExecutionBackend):
    """Process pools that stay warm across ``map`` calls (the persistent tier).

    :class:`ProcessBackend` pays the full executor spin-up — fork, pipe
    setup, worker bootstrap — on *every* fan-out.  This backend keeps one
    long-lived :class:`~concurrent.futures.ProcessPoolExecutor` per requested
    worker count, created lazily on first use and reused by every later
    fan-out of the same width, so repeated dispatches (sweeps, services, the
    ``dispatch`` bench) pay it once.  Warm workers cannot change results:
    every trial is seeded explicitly and best-of selection is
    order-independent, so the determinism contract holds regardless of which
    worker ran what (see docs/determinism.md).

    Lifecycle: pools are shut down at interpreter exit (``atexit``) or
    explicitly via :meth:`shutdown` / :func:`shutdown_pools`.  A pool whose
    workers died (:class:`~concurrent.futures.process.BrokenProcessPool`) is
    discarded and re-forked once per ``map`` call — transient deaths recover,
    a task that reliably kills its worker still raises.  The instance is
    fork-aware: state inherited into a child process is discarded there (the
    executor handles belong to the parent), so a pool worker that itself fans
    out simply forks fresh pools of its own.
    """

    name = "pool"
    process_based = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: Dict[int, ProcessPoolExecutor] = {}
        self._owner_pid = os.getpid()
        self._atexit_registered = False

    def map(self, fn, items, *, max_workers=None):
        items = list(items)
        workers = _effective_workers(max_workers, len(items))
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            return list(self._pool(workers).map(fn, items))
        except BrokenProcessPool:
            # A worker died mid-fan-out (OOM kill, crash).  Re-fork the pool
            # and retry the whole map once — results are deterministic, so a
            # retry is indistinguishable from a slow first attempt.
            self._discard(workers)
            return list(self._pool(workers).map(fn, items))

    def warm(self, workers: int) -> None:
        """Fork the ``workers``-wide pool now (spin-up off the measured path)."""
        width = max(1, int(workers))
        pool = self._pool(width)
        # submit/await one no-op round so the workers actually exist before
        # warm-dispatch latency is measured.
        list(pool.map(_pool_worker_ping, range(width)))

    def pool_widths(self) -> List[int]:
        """Worker counts with a live pool (observability/tests)."""
        with self._lock:
            self._reset_if_forked()
            return sorted(self._pools)

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every live pool; the next ``map`` re-creates lazily."""
        with self._lock:
            self._reset_if_forked()
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=wait)

    def _pool(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            self._reset_if_forked()
            pool = self._pools.get(workers)
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
                self._pools[workers] = pool
                if not self._atexit_registered:
                    self._atexit_registered = True
                    atexit.register(self.shutdown)
            return pool

    def _discard(self, workers: int) -> None:
        with self._lock:
            self._reset_if_forked()
            pool = self._pools.pop(workers, None)
        if pool is not None:
            pool.shutdown(wait=False)

    def _reset_if_forked(self) -> None:
        # Called with the lock held.  In a forked child the inherited
        # executors are the parent's; drop the handles without shutting down.
        if os.getpid() != self._owner_pid:
            self._owner_pid = os.getpid()
            self._pools = {}
            self._atexit_registered = False


def _pool_worker_ping(index: int) -> int:
    """No-op pool task used to warm workers and measure bare dispatch."""
    return index


#: The built-in backends, shared instances.  serial/thread/process are
#: stateless; the pool backend owns the long-lived worker pools, so every
#: caller resolving ``"pool"`` shares the same warm tier.
BACKENDS = {
    backend.name: backend
    for backend in (SerialBackend(), ThreadBackend(), ProcessBackend(), PoolBackend())
}


def shutdown_pools(wait: bool = True) -> None:
    """Shut down the shared :class:`PoolBackend`'s warm pools explicitly."""
    pool_backend = BACKENDS["pool"]
    assert isinstance(pool_backend, PoolBackend)
    pool_backend.shutdown(wait=wait)


def resolve_backend(spec: BackendSpec) -> Optional[ExecutionBackend]:
    """Resolve a backend name or instance; ``None`` passes through as ``None``."""
    if spec is None or isinstance(spec, ExecutionBackend):
        return spec
    try:
        return BACKENDS[str(spec)]
    except KeyError:
        raise ReproError(
            f"unknown execution backend {spec!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None


def effective_backend(
    execution: BackendSpec, workers: Optional[int]
) -> Optional[ExecutionBackend]:
    """The one conventional resolution every fan-out site shares.

    An explicit ``execution`` wins; ``workers`` greater than 1 alone implies
    the thread backend (a requested pool width is never silently ignored);
    otherwise ``None`` (callers treat that as serial).  Centralized so the
    CLI's recorded report envelope, ``run_bench``, ``map_parallel``, and the
    ambient :func:`execution_scope` can never drift apart on the promotion
    rule.
    """
    backend = resolve_backend(execution)
    if backend is not None:
        return backend
    if workers is not None and workers > 1:
        return BACKENDS["thread"]
    return None


# ----------------------------------------------------------------------
# Ambient execution policy
# ----------------------------------------------------------------------
_SCOPE = threading.local()


def current_execution() -> Tuple[Optional[ExecutionBackend], Optional[int]]:
    """The ambient ``(backend, workers)`` policy, ``(None, None)`` outside a scope.

    Thread-local by design: worker threads (and fresh worker processes) start
    with no ambient policy, so a parallel fan-out never implicitly nests
    another parallel fan-out inside its own workers.
    """
    return getattr(_SCOPE, "value", None) or (None, None)


@contextmanager
def execution_scope(
    execution: BackendSpec = None, workers: Optional[int] = None
) -> Iterator[Tuple[Optional[ExecutionBackend], Optional[int]]]:
    """Install an ambient execution policy for the enclosed block.

    Code that takes no explicit knobs (e.g. the synthesizer's randomized-trial
    fan-out when its :class:`~repro.core.config.SynthesisConfig` does not pin
    one) resolves its backend through :func:`current_execution`.  Scopes nest;
    ``None`` fields inherit from the enclosing scope.  ``workers`` greater
    than 1 without a backend selects the thread backend — the same
    "workers alone implies threads" convention every explicit fan-out site
    follows — so a requested pool width is never silently ignored.
    """
    previous = getattr(_SCOPE, "value", None)
    backend = resolve_backend(execution)
    if previous is not None:
        if backend is None:
            backend = previous[0]
        if workers is None:
            workers = previous[1]
    backend = effective_backend(backend, workers)
    _SCOPE.value = (backend, workers)
    try:
        yield _SCOPE.value
    finally:
        _SCOPE.value = previous


# ----------------------------------------------------------------------
# Mapping front door
# ----------------------------------------------------------------------
def map_parallel(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    *,
    max_workers: Optional[int] = None,
    backend: BackendSpec = None,
) -> List[_ResultT]:
    """Apply ``fn`` to every item, preserving input order in the result list.

    With an explicit ``backend`` (name or instance) the items run there.
    Without one, the historical policy applies: ``max_workers`` greater than 1
    selects the thread backend, anything else runs serially.  Exceptions
    propagate to the caller either way.
    """
    items = list(items)
    resolved = effective_backend(backend, max_workers) or BACKENDS["serial"]
    return resolved.map(fn, items, max_workers=max_workers)


def chunk_items(
    items: Iterable[_ItemT], workers: Optional[int], *, chunks_per_worker: int = 4
) -> List[List[_ItemT]]:
    """Split ``items`` into contiguous chunks for thin chunked submission.

    Process fan-outs submit chunks instead of single items so per-task IPC
    (task pickle, result pickle, future bookkeeping) is amortized while load
    still balances: ``chunks_per_worker`` chunks per worker keeps the tail
    short when chunk runtimes vary.  Chunks are contiguous and in input
    order, so concatenating per-chunk results reproduces the plain ``map``
    order exactly — chunking can never reorder outcomes.
    """
    items = list(items)
    if not items:
        return []
    width = workers if workers is not None else default_worker_count()
    target = max(1, min(len(items), max(1, int(width)) * max(1, int(chunks_per_worker))))
    base, extra = divmod(len(items), target)
    chunks: List[List[_ItemT]] = []
    start = 0
    for index in range(target):
        size = base + (1 if index < extra else 0)
        if size:
            chunks.append(items[start : start + size])
        start += size
    return chunks
