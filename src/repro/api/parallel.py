"""Shared thread-pool mapping used by :func:`repro.api.runner.run_batch`.

Kept free of intra-package imports so lower layers (e.g. the synthesizer's
randomized-trial fan-out) can reuse the exact same execution path without
creating an import cycle.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

__all__ = ["map_parallel"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def map_parallel(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    *,
    max_workers: Optional[int] = None,
) -> List[_ResultT]:
    """Apply ``fn`` to every item, preserving input order in the result list.

    With ``max_workers`` greater than 1 (and more than one item), items run
    concurrently on a :class:`~concurrent.futures.ThreadPoolExecutor`;
    otherwise the map is a plain serial loop.  Exceptions propagate to the
    caller either way.
    """
    items = list(items)
    if max_workers is not None and max_workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]
