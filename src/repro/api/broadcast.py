"""One-shot payload broadcast plane for process fan-outs.

Process backends used to ship the bulky shared input of a fan-out — the
synthesizer's :class:`~repro.core.synthesizer.TrialPayload` with its topology,
pattern, and precomputed hop tables — pickled once *per work item*.  This
module is the transport that replaces that: the caller publishes the shared
input once per fan-out as a content-hash-addressed blob, work items carry only
the tiny :class:`BlobRef`, and each worker process fetches and decodes the
blob at most once.

Two transports, chosen automatically at :func:`publish` time:

* **shared memory** — the blob is copied into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment named after its
  content hash; workers attach by name and read it zero-copy.  The publisher
  owns the segment: it is unlinked on :func:`release` (refcounted, so
  overlapping fan-outs of the same content share one segment) and at exit.
* **inline bytes** — when shared memory is unavailable (or segment creation
  fails), the blob rides inside the ref itself and therefore inside each task
  pickle.  Chunked submission keeps that amortized: one copy per *chunk*, not
  per item.

Identity is the blob's SHA-256 — :func:`fetch` re-hashes what it read and
refuses a mismatch, so a torn or stale segment can never silently feed a
worker wrong inputs.  Content addressing is also what makes worker-side
caches (keyed by ``ref.key``) safe across the warm pools of
:class:`~repro.api.parallel.PoolBackend`: equal key implies equal bytes.

Kept free of intra-package imports (except :mod:`repro.errors`) so lower
layers can import it without cycles.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import threading
from typing import Dict, NamedTuple, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "BlobRef",
    "fetch",
    "publish",
    "published_segments",
    "release",
    "shared_memory_available",
    "shutdown",
]

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down interpreters
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether the shared-memory transport can be used on this host."""
    return _shared_memory is not None


class BlobRef(NamedTuple):
    """Handle to a published blob; small enough to ride in every task pickle.

    ``key`` is the blob's SHA-256 hex digest (its content identity), ``size``
    the exact byte length.  ``segment`` names the shared-memory segment, or is
    ``None`` when the blob travels inline in ``payload`` (the fallback
    transport).
    """

    key: str
    size: int
    segment: Optional[str]
    payload: Optional[bytes]


# Publisher-side registry: key -> (segment, refcount).  The lock also guards
# the worker-side bytes cache below; contention is one lock hop per fan-out
# (publish/release) plus one per first fetch in a worker.
_LOCK = threading.Lock()
_PUBLISHED: Dict[str, Tuple[object, int]] = {}

# Worker-side raw-bytes cache (decoded-object caches live at the call sites,
# keyed by the same content hash).  Bounded: long-lived pool workers must not
# accumulate every blob they ever saw.
_FETCHED: Dict[str, bytes] = {}
_FETCHED_ORDER: list = []
_FETCH_CACHE_LIMIT = 4

_atexit_registered = False


def _segment_name(key: str) -> str:
    # Content hash + publisher pid: unique across concurrent publishers,
    # stable within one, and short enough for macOS' 31-char POSIX limit.
    return f"tr{os.getpid():x}_{key[:16]}"


_ATTACH_LOCK = threading.Lock()


def _attach_readonly(name: str) -> object:
    """Attach to a segment without registering it with the resource tracker.

    Workers only *read* segments the publisher owns and unlinks.  On 3.13+
    ``track=False`` says exactly that.  Older interpreters register every
    attach with the resource tracker — which forked pool workers *share*
    with the publisher, and whose per-name set cannot refcount: a worker
    unregistering after the fact would erase the publisher's registration
    and both sides' cleanup would then crash the tracker loop.  So on the
    3.9+ floor the registration is suppressed for the duration of the
    attach instead (serialized: the swap is process-global state).
    """
    try:
        return _shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track flag
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shared_memory(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def publish(data: bytes) -> BlobRef:
    """Publish ``data`` for one fan-out; returns the ref tasks should carry.

    Prefers a shared-memory segment; falls back to carrying the bytes inline
    in the ref when segments are unavailable or creation fails.  Publishing
    the same content twice (nested or overlapping fan-outs) refcounts one
    segment.  Pair every publish with exactly one :func:`release`.
    """
    key = hashlib.sha256(data).hexdigest()
    if _shared_memory is None:
        return BlobRef(key=key, size=len(data), segment=None, payload=data)
    global _atexit_registered
    with _LOCK:
        existing = _PUBLISHED.get(key)
        if existing is not None:
            segment, refcount = existing
            _PUBLISHED[key] = (segment, refcount + 1)
            return BlobRef(key=key, size=len(data), segment=segment.name, payload=None)
        try:
            segment = _shared_memory.SharedMemory(
                name=_segment_name(key), create=True, size=max(1, len(data))
            )
        except OSError:
            return BlobRef(key=key, size=len(data), segment=None, payload=data)
        segment.buf[: len(data)] = data
        _PUBLISHED[key] = (segment, 1)
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(shutdown)
        return BlobRef(key=key, size=len(data), segment=segment.name, payload=None)


def release(ref: BlobRef) -> None:
    """Drop one publisher reference; the segment is unlinked at zero."""
    if ref.segment is None:
        return
    with _LOCK:
        entry = _PUBLISHED.get(ref.key)
        if entry is None:
            return
        segment, refcount = entry
        if refcount > 1:
            _PUBLISHED[ref.key] = (segment, refcount - 1)
            return
        del _PUBLISHED[ref.key]
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def shutdown() -> None:
    """Unlink every still-published segment (atexit safety net)."""
    with _LOCK:
        entries = list(_PUBLISHED.values())
        _PUBLISHED.clear()
    for segment, _ in entries:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def published_segments() -> int:
    """Number of live publisher-side segments (observability/tests)."""
    with _LOCK:
        return len(_PUBLISHED)


def _attach_bytes(ref: BlobRef) -> bytes:
    if _shared_memory is None:  # pragma: no cover - publisher had it, so do we
        raise ReproError(f"broadcast blob {ref.key[:12]} needs shared memory, which is unavailable")
    try:
        segment = _attach_readonly(ref.segment)
    except FileNotFoundError:
        raise ReproError(
            f"broadcast blob {ref.key[:12]} (segment {ref.segment}) is no longer "
            "published; was release() called before the fan-out finished?"
        ) from None
    try:
        return bytes(segment.buf[: ref.size])
    finally:
        segment.close()


def fetch(ref: BlobRef) -> bytes:
    """Return the published bytes for ``ref``, verifying their content hash.

    Safe to call from worker processes (attaches to the named segment) and
    from the publishing process itself (served from the registry without a
    second mapping).  Fetched bytes are cached per process under the content
    hash, so a warm pool worker touches the transport once per distinct blob.
    """
    with _LOCK:
        cached = _FETCHED.get(ref.key)
        if cached is not None:
            return cached
        entry = _PUBLISHED.get(ref.key)
    if entry is not None:
        data = bytes(entry[0].buf[: ref.size])
    elif ref.payload is not None:
        data = ref.payload
    else:
        data = _attach_bytes(ref)
    if hashlib.sha256(data).hexdigest() != ref.key:
        raise ReproError(
            f"broadcast blob {ref.key[:12]} failed its content-hash check "
            "(torn read or stale segment); refusing to hand it to a worker"
        )
    with _LOCK:
        if ref.key not in _FETCHED:
            _FETCHED[ref.key] = data
            _FETCHED_ORDER.append(ref.key)
            while len(_FETCHED_ORDER) > _FETCH_CACHE_LIMIT:
                _FETCHED.pop(_FETCHED_ORDER.pop(0), None)
    return data
