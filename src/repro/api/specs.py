"""Declarative, serializable run specifications.

A :class:`RunSpec` is the single front door of the library: it names a
topology, a collective, an algorithm, and simulation options, all as plain
JSON-compatible data.  Every spec round-trips losslessly through
``to_dict``/``from_dict`` (and ``to_json``/``from_json``), so the same
document can be stored in a file, sent over the wire, or used as a cache key
(:meth:`RunSpec.spec_hash`).

Values inside ``params`` are canonicalized on construction (tuples become
lists, mapping keys become strings) so that equality and hashing are stable
across a JSON round-trip::

    >>> spec = TopologySpec(name="mesh", params={"dims": (3, 3)})
    >>> TopologySpec.from_dict(spec.to_dict()) == spec
    True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import SpecError
from repro.topology.topology import Topology

__all__ = [
    "TopologySpec",
    "CollectiveSpec",
    "AlgorithmSpec",
    "SimulationSpec",
    "RunSpec",
    "topology_to_spec",
    "parse_size",
]


def _canonical(value: Any) -> Any:
    """Normalize ``value`` into the exact shape a JSON round-trip produces."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    raise SpecError(
        f"spec parameter value {value!r} of type {type(value).__name__} is not JSON-serializable"
    )


def _spec_dunder_hash(self) -> int:
    return hash(self.canonical_json())


class _SpecBase:
    """Shared (de)serialization behaviour for every spec dataclass."""

    def to_dict(self) -> Dict[str, Any]:
        """Convert the spec (including nested specs) into plain dictionaries."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_SpecBase":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys ignored)."""
        known = {item.name for item in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialize the spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "_SpecBase":
        """Parse a spec from a JSON document produced by :meth:`to_json`."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise SpecError(f"expected a JSON object for {cls.__name__}, got {type(data).__name__}")
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON used for hashing and cache keys."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def spec_hash(self) -> str:
        """Stable content hash of the spec (hex digest)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def _canonicalize_params(self) -> None:
        object.__setattr__(self, "params", _canonical(self.params))


@dataclass(frozen=True)
class TopologySpec(_SpecBase):
    """A named topology plus its builder parameters.

    ``name`` refers to an entry in :data:`repro.api.registry.TOPOLOGIES`
    (e.g. ``"ring"``, ``"mesh"``, ``"custom"``); ``params`` are the keyword
    arguments for that builder (e.g. ``{"num_npus": 8}``).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    __hash__ = _spec_dunder_hash

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("topology spec needs a non-empty name")
        self._canonicalize_params()


@dataclass(frozen=True)
class CollectiveSpec(_SpecBase):
    """A collective pattern plus its payload description.

    Attributes
    ----------
    name:
        Entry in :data:`repro.api.registry.COLLECTIVES` (e.g. ``"all_gather"``).
    collective_size:
        Per-NPU collective size in bytes.
    chunks_per_npu:
        Number of sub-chunks each NPU's buffer is split into.
    params:
        Extra pattern arguments (e.g. ``{"root": 0}`` for rooted collectives).
    """

    name: str
    collective_size: float = 4e6
    chunks_per_npu: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)

    __hash__ = _spec_dunder_hash

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("collective spec needs a non-empty name")
        if self.collective_size <= 0:
            raise SpecError(f"collective size must be positive, got {self.collective_size}")
        if self.chunks_per_npu < 1:
            raise SpecError(f"chunks_per_npu must be at least 1, got {self.chunks_per_npu}")
        self._canonicalize_params()


@dataclass(frozen=True)
class AlgorithmSpec(_SpecBase):
    """An algorithm or synthesizer plus its configuration.

    ``name`` refers to an entry in :data:`repro.api.registry.ALGORITHMS`
    (e.g. ``"tacos"``, ``"ring"``, ``"taccl_like"``, ``"ideal"``); ``params``
    configure it (e.g. ``{"trials": 5, "seed": 1}`` for TACOS).
    """

    name: str = "tacos"
    params: Mapping[str, Any] = field(default_factory=dict)

    __hash__ = _spec_dunder_hash

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("algorithm spec needs a non-empty name")
        self._canonicalize_params()


@dataclass(frozen=True)
class SimulationSpec(_SpecBase):
    """Options for timing the produced algorithm.

    Attributes
    ----------
    simulate:
        When True (default) the algorithm is timed by the congestion-aware
        simulator.  When False, physically-routed algorithms report their
        synthesized completion time instead (logical schedules always need
        the simulator).
    routing_message_size:
        Message size used when the simulator must route a send over a
        multi-hop path; defaults to the actual message size.
    """

    simulate: bool = True
    routing_message_size: Optional[float] = None

    __hash__ = _spec_dunder_hash


@dataclass(frozen=True)
class RunSpec(_SpecBase):
    """One fully-described run: topology x collective x algorithm x simulation."""

    topology: TopologySpec
    collective: CollectiveSpec
    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)
    label: str = ""

    __hash__ = _spec_dunder_hash

    def __post_init__(self) -> None:
        for attribute, expected in (
            ("topology", TopologySpec),
            ("collective", CollectiveSpec),
            ("algorithm", AlgorithmSpec),
            ("simulation", SimulationSpec),
        ):
            if not isinstance(getattr(self, attribute), expected):
                raise SpecError(f"RunSpec.{attribute} must be a {expected.__name__}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        try:
            topology = TopologySpec.from_dict(data["topology"])
            collective = CollectiveSpec.from_dict(data["collective"])
        except KeyError as exc:
            raise SpecError(f"RunSpec document is missing the {exc.args[0]!r} section") from None
        return cls(
            topology=topology,
            collective=collective,
            algorithm=AlgorithmSpec.from_dict(data.get("algorithm", {})),
            simulation=SimulationSpec.from_dict(data.get("simulation", {})),
            label=str(data.get("label", "")),
        )


def topology_to_spec(topology: Topology) -> TopologySpec:
    """Express an arbitrary in-memory :class:`Topology` as a ``"custom"`` spec.

    Links keep their exact alpha/beta values and insertion order, so the
    rebuilt topology is indistinguishable from the original (including the
    deterministic tie-breaking order seen by the synthesizer).
    """
    return TopologySpec(
        name="custom",
        params={
            "num_npus": topology.num_npus,
            "topology_name": topology.name,
            "links": [
                [link.source, link.dest, link.alpha, link.beta] for link in topology.links()
            ],
        },
    )


#: Decimal size-unit multipliers accepted by :func:`parse_size`.
_SIZE_UNITS = {"B": 1.0, "KB": 1e3, "MB": 1e6, "GB": 1e9, "TB": 1e12}


def parse_size(text: str) -> float:
    """Parse a human-friendly byte size (``"4MB"``, ``"1.5GB"``, ``"4e6"``)."""
    cleaned = str(text).strip().upper()
    for unit in sorted(_SIZE_UNITS, key=len, reverse=True):
        if cleaned.endswith(unit):
            number = cleaned[: -len(unit)].strip()
            try:
                return float(number) * _SIZE_UNITS[unit]
            except ValueError:
                raise SpecError(f"cannot parse size {text!r}") from None
    try:
        return float(cleaned)
    except ValueError:
        raise SpecError(f"cannot parse size {text!r}") from None
