"""Built-in registry entries: every topology, collective, and algorithm.

Importing this module (which :mod:`repro.api` does automatically) populates
the four registries with the library's built-in entries, so a spec like
``{"topology": {"name": "mesh", "params": {"dims": [3, 3]}}, ...}`` resolves
without further setup.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.ideal import (
    ideal_all_gather_time,
    ideal_all_reduce_time,
    ideal_reduce_scatter_time,
)
from repro.api.cache import ArtifactStore
from repro.api.registry import (
    ALGORITHMS,
    COLLECTIVES,
    SYNTHESIZERS,
    TOPOLOGIES,
    AlgorithmArtifact,
)
from repro.api.specs import TopologySpec
from repro.baselines.blueconnect import blueconnect_all_reduce
from repro.baselines.ccube import ccube_all_reduce
from repro.baselines.dbt import dbt_all_reduce
from repro.baselines.direct import direct_all_reduce
from repro.baselines.multitree import multitree_all_reduce
from repro.baselines.rhd import rhd_all_reduce
from repro.baselines.ring import ring_all_reduce
from repro.baselines.taccl_like import TacclLikeSynthesizer
from repro.baselines.themis import themis_all_reduce
from repro.collectives.all_gather import AllGather
from repro.collectives.all_reduce import AllReduce
from repro.collectives.broadcast import Broadcast, Reduce
from repro.collectives.gather_scatter import AllToAll, Gather, Scatter
from repro.collectives.pattern import CollectivePattern
from repro.collectives.reduce_scatter import ReduceScatter
from repro.core.config import SynthesisConfig
from repro.core.synthesizer import TacosSynthesizer, resolve_engine
from repro.errors import RegistryError, SpecError, TopologyError
from repro.search import GuidedSynthesizer
from repro.topology.builders import (
    build_2d_switch,
    build_3d_rfs,
    build_binary_hypercube,
    build_dgx1,
    build_dragonfly,
    build_fully_connected,
    build_hypercube_3d,
    build_mesh,
    build_mesh_2d,
    build_mesh_3d,
    build_ring,
    build_switch,
    build_torus,
    build_torus_2d,
    build_torus_3d,
)
from repro.topology.topology import Topology

__all__ = ["build_custom_topology", "parse_topology_spec", "parse_token"]


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------
def build_custom_topology(
    num_npus: int,
    links: Sequence[Sequence[float]],
    topology_name: str = "Custom",
) -> Topology:
    """Build a topology from an explicit ``[source, dest, alpha, beta]`` link list.

    This is the fully-general escape hatch that lets a JSON document express
    any heterogeneous, asymmetric network; :func:`repro.api.specs.topology_to_spec`
    produces it from an in-memory :class:`Topology`.
    """
    topology = Topology(int(num_npus), name=str(topology_name))
    for entry in links:
        if len(entry) != 4:
            raise TopologyError(f"custom link entries must be [source, dest, alpha, beta], got {entry!r}")
        source, dest, alpha, beta = entry
        topology.add_link(int(source), int(dest), alpha=float(alpha), beta=float(beta))
    return topology


TOPOLOGIES.register(
    "ring", build_ring, positional=("num_npus",), description="Bidirectional ring"
)
TOPOLOGIES.register(
    "uni_ring",
    lambda num_npus, **kwargs: build_ring(num_npus, bidirectional=False, **kwargs),
    aliases=("uniring",),
    positional=("num_npus",),
    description="Unidirectional ring",
)
TOPOLOGIES.register(
    "fully_connected",
    build_fully_connected,
    aliases=("fc",),
    positional=("num_npus",),
    description="Fully-connected graph",
)
TOPOLOGIES.register(
    "switch", build_switch, positional=("num_npus",), description="Unwound switch (see unwind_degree)"
)
TOPOLOGIES.register("mesh", build_mesh, positional=("dims",), description="n-dimensional mesh")
TOPOLOGIES.register(
    "mesh_2d", build_mesh_2d, positional=("rows", "cols"), description="2D mesh (rows x cols)"
)
TOPOLOGIES.register(
    "mesh_3d", build_mesh_3d, positional=("x", "y", "z"), description="3D mesh"
)
TOPOLOGIES.register("torus", build_torus, positional=("dims",), description="n-dimensional torus")
TOPOLOGIES.register(
    "torus_2d", build_torus_2d, positional=("rows", "cols"), description="2D torus"
)
TOPOLOGIES.register("torus_3d", build_torus_3d, positional=("x", "y", "z"), description="3D torus")
TOPOLOGIES.register(
    "hypercube_3d",
    build_hypercube_3d,
    positional=("x", "y", "z"),
    description="Paper's 3D Hypercube (3D grid)",
)
TOPOLOGIES.register(
    "binary_hypercube",
    build_binary_hypercube,
    positional=("dimension",),
    description="Binary hypercube with 2**dimension NPUs",
)
TOPOLOGIES.register("dgx1", build_dgx1, positional=(), description="8-GPU DGX-1-like system")
TOPOLOGIES.register(
    "dragonfly",
    build_dragonfly,
    positional=("num_groups", "group_size"),
    description="DragonFly groups with global links",
)
TOPOLOGIES.register(
    "rfs_3d",
    build_3d_rfs,
    aliases=("3d_rfs",),
    positional=("ring_size", "fc_size", "switch_size"),
    description="3D Ring-FC-Switch hierarchy (Fig. 15 / Table V)",
)
TOPOLOGIES.register(
    "switch_2d",
    build_2d_switch,
    aliases=("2d_switch",),
    positional=("first_size", "second_size"),
    description="2D Switch hierarchy (Fig. 15)",
)
TOPOLOGIES.register(
    "custom",
    build_custom_topology,
    positional=(),
    description="Explicit [source, dest, alpha, beta] link list",
)


def parse_token(token: str) -> Any:
    """Parse one shorthand token: int, float, bool, AxBxC dims list, or string.

    Used for both topology shorthand arguments (``"mesh:4x4"``) and CLI
    ``--param`` values (``-p dims=2x2`` must become ``[2, 2]``).
    """
    text = token.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    parts = text.split("x")
    if len(parts) > 1 and all(part.strip().isdigit() for part in parts):
        return [int(part) for part in parts]
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_topology_spec(text: str) -> TopologySpec:
    """Parse CLI shorthand like ``"ring:8"`` or ``"mesh:4x4"`` into a spec.

    The part before ``:`` is the registry name; comma-separated arguments
    after it are matched against the builder's declared positional parameter
    names, and ``key=value`` tokens become named parameters
    (``"switch:8,unwind_degree=2"``).
    """
    name, _, rest = str(text).strip().partition(":")
    entry = TOPOLOGIES.entry(name)
    positional_names = tuple(entry.metadata.get("positional", ()))
    params = {}
    positional_index = 0
    if rest:
        for token in rest.split(","):
            if "=" in token:
                key, _, value = token.partition("=")
                params[key.strip()] = parse_token(value)
            else:
                if positional_index >= len(positional_names):
                    raise SpecError(
                        f"too many positional arguments in topology shorthand {text!r}; "
                        f"{entry.name} takes {len(positional_names)}"
                    )
                params[positional_names[positional_index]] = parse_token(token)
                positional_index += 1
    return TopologySpec(name=entry.name, params=params)


# ----------------------------------------------------------------------
# Collectives
# ----------------------------------------------------------------------
COLLECTIVES.register("all_gather", AllGather, aliases=("allgather",))
COLLECTIVES.register("all_reduce", AllReduce, aliases=("allreduce",))
COLLECTIVES.register("reduce_scatter", ReduceScatter, aliases=("reducescatter",))
COLLECTIVES.register("broadcast", Broadcast)
COLLECTIVES.register("reduce", Reduce)
COLLECTIVES.register("gather", Gather)
COLLECTIVES.register("scatter", Scatter)
COLLECTIVES.register("all_to_all", AllToAll, aliases=("alltoall",))


# ----------------------------------------------------------------------
# Synthesizers
# ----------------------------------------------------------------------
SYNTHESIZERS.register("tacos", TacosSynthesizer, description="TACOS TEN-matching synthesizer")
SYNTHESIZERS.register(
    "guided",
    GuidedSynthesizer,
    description="Guided TACOS search: portfolio-primed, incumbent-pruned, floor-terminated",
)
SYNTHESIZERS.register(
    "taccl_like",
    TacclLikeSynthesizer,
    aliases=("taccl",),
    description="Step-synchronous congestion-oblivious synthesizer",
)


# ----------------------------------------------------------------------
# Algorithms
# ----------------------------------------------------------------------
def _require_all_reduce(name: str, pattern: CollectivePattern) -> None:
    if not isinstance(pattern, AllReduce):
        raise RegistryError(
            f"algorithm {name!r} only supports the all_reduce collective, got {pattern.name!r}"
        )


def _schedule_baseline(name: str, builder, *, needs_topology: bool = False, **fixed: Any):
    """Wrap a ``*_all_reduce`` schedule builder into the uniform algorithm shape."""

    def build(topology: Topology, pattern: CollectivePattern, collective_size: float) -> AlgorithmArtifact:
        _require_all_reduce(name, pattern)
        target = topology if needs_topology else topology.num_npus
        schedule = builder(
            target, collective_size, chunks_per_npu=pattern.chunks_per_npu, **fixed
        )
        return AlgorithmArtifact(schedule=schedule)

    build.__name__ = f"build_{name}_all_reduce"
    return build


ALGORITHMS.register(
    "ring",
    _schedule_baseline("ring", ring_all_reduce, bidirectional=True),
    description="Bidirectional Ring All-Reduce baseline",
)
ALGORITHMS.register(
    "uni_ring",
    _schedule_baseline("uni_ring", ring_all_reduce, bidirectional=False),
    aliases=("uniring",),
    description="Unidirectional Ring All-Reduce baseline",
)
ALGORITHMS.register(
    "direct",
    _schedule_baseline("direct", direct_all_reduce),
    description="Direct (1-step RS + 1-step AG) All-Reduce baseline",
)
ALGORITHMS.register(
    "rhd",
    _schedule_baseline("rhd", rhd_all_reduce),
    description="Recursive Halving-Doubling All-Reduce baseline",
)
ALGORITHMS.register(
    "dbt",
    _schedule_baseline("dbt", dbt_all_reduce),
    description="Double Binary Tree All-Reduce baseline",
)
ALGORITHMS.register(
    "multitree",
    _schedule_baseline("multitree", multitree_all_reduce, needs_topology=True),
    description="MultiTree BFS-tree All-Reduce baseline",
)


@ALGORITHMS.register("blueconnect", description="BlueConnect hierarchical All-Reduce (needs dims)")
def _blueconnect(
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
    *,
    dims: Sequence[int],
) -> AlgorithmArtifact:
    _require_all_reduce("blueconnect", pattern)
    _check_dims("blueconnect", dims, topology)
    schedule = blueconnect_all_reduce(
        dims, collective_size, chunks_per_npu=pattern.chunks_per_npu
    )
    return AlgorithmArtifact(schedule=schedule)


@ALGORITHMS.register("themis", description="Themis dimension-rotating All-Reduce (needs dims)")
def _themis(
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
    *,
    dims: Sequence[int],
) -> AlgorithmArtifact:
    _require_all_reduce("themis", pattern)
    _check_dims("themis", dims, topology)
    schedule = themis_all_reduce(dims, collective_size, chunks_per_npu=pattern.chunks_per_npu)
    return AlgorithmArtifact(schedule=schedule)


@ALGORITHMS.register("ccube", aliases=("c_cube",), description="C-Cube dual-tree All-Reduce (DGX-1)")
def _ccube(
    topology: Topology, pattern: CollectivePattern, collective_size: float
) -> AlgorithmArtifact:
    _require_all_reduce("ccube", pattern)
    schedule = ccube_all_reduce(
        collective_size, chunks_per_npu=pattern.chunks_per_npu, topology=topology
    )
    return AlgorithmArtifact(schedule=schedule)


def _check_dims(name: str, dims: Sequence[int], topology: Topology) -> None:
    product = 1
    for dim in dims:
        product *= int(dim)
    if product != topology.num_npus:
        raise RegistryError(
            f"algorithm {name!r} dims {tuple(dims)} describe {product} NPUs but the "
            f"topology has {topology.num_npus}"
        )


@ALGORITHMS.register("tacos", description="TACOS topology-aware synthesis (any collective)")
def _tacos(
    topology: Topology, pattern: CollectivePattern, collective_size: float, **params: Any
) -> AlgorithmArtifact:
    # `engine` is a registry name (flat / native / reference), not a
    # SynthesisConfig field: resolve it here so `-p engine=native` (and the
    # CLI's --engine sugar) works through specs, caches, and pickled batches.
    engine_name = params.pop("engine", None)
    engine = resolve_engine(str(engine_name)) if engine_name is not None else None
    config = SynthesisConfig(**params) if params else None
    synthesizer = TacosSynthesizer(config, engine=engine)
    stats = synthesizer.synthesize_with_stats(topology, pattern, collective_size)
    return AlgorithmArtifact(
        algorithm=stats.algorithm,
        synthesis_seconds=stats.wall_clock_seconds,
        extras={"trials": float(stats.trials), "rounds": float(stats.rounds)},
        trial_stats=stats.trial_stats,
    )


@ALGORITHMS.register(
    "guided",
    description="Guided TACOS search: portfolio-primed, incumbent-pruned, floor-terminated",
)
def _guided(
    topology: Topology, pattern: CollectivePattern, collective_size: float, **params: Any
) -> AlgorithmArtifact:
    # Same engine seam as the tacos entry; `store_dir` points the seed
    # portfolio at an artifact-store directory (e.g. the --cache-dir of
    # earlier runs) and `portfolio_limit` caps the front-loaded seeds.
    # Pruning and floor termination default on — pass
    # `incumbent_pruning=false` to get a pure stats-collecting search.
    engine_name = params.pop("engine", None)
    engine = resolve_engine(str(engine_name)) if engine_name is not None else None
    store_dir = params.pop("store_dir", None)
    portfolio_limit = int(params.pop("portfolio_limit", 8))
    params.setdefault("incumbent_pruning", True)
    params.setdefault("floor_termination", bool(params["incumbent_pruning"]))
    params.setdefault("collect_trial_stats", True)
    config = SynthesisConfig(**params)
    store = ArtifactStore(store_dir) if store_dir else None
    synthesizer = GuidedSynthesizer(
        config, engine, store=store, portfolio_limit=portfolio_limit
    )
    stats = synthesizer.synthesize_with_stats(topology, pattern, collective_size)
    trial_stats = stats.trial_stats or []
    full = sum(1 for entry in trial_stats if entry.get("pruned_at_round") is None)
    return AlgorithmArtifact(
        algorithm=stats.algorithm,
        synthesis_seconds=stats.wall_clock_seconds,
        extras={
            "trials": float(stats.trials),
            "rounds": float(stats.rounds),
            "full_trials": float(full),
            "pruned_trials": float(len(trial_stats) - full),
            "portfolio_seeds": float(len(synthesizer.last_portfolio_seeds)),
        },
        trial_stats=stats.trial_stats,
    )


@ALGORITHMS.register(
    "taccl_like",
    aliases=("taccl",),
    description="TACCL-like step-synchronous synthesis (all_gather / all_reduce)",
)
def _taccl_like(
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
    *,
    restarts: int = 10,
    seed: int = 0,
) -> AlgorithmArtifact:
    synthesizer = TacclLikeSynthesizer(restarts=restarts, seed=seed)
    if isinstance(pattern, AllReduce):
        result = synthesizer.synthesize_all_reduce(
            topology, collective_size, chunks_per_npu=pattern.chunks_per_npu
        )
    elif isinstance(pattern, AllGather):
        result = synthesizer.synthesize_all_gather(
            topology, collective_size, chunks_per_npu=pattern.chunks_per_npu
        )
    else:
        raise RegistryError(
            f"algorithm 'taccl_like' supports all_gather and all_reduce, got {pattern.name!r}"
        )
    return AlgorithmArtifact(
        schedule=result.schedule,
        synthesis_seconds=result.wall_clock_seconds,
        extras={"restarts": float(result.restarts)},
    )


#: Analytic lower-bound times per supported collective pattern name.
_IDEAL_BOUNDS = {
    "AllReduce": ideal_all_reduce_time,
    "AllGather": ideal_all_gather_time,
    "ReduceScatter": ideal_reduce_scatter_time,
}


@ALGORITHMS.register("ideal", description="Theoretical ideal bound (Sec. V-A), no execution")
def _ideal(
    topology: Topology, pattern: CollectivePattern, collective_size: float
) -> AlgorithmArtifact:
    bound = _IDEAL_BOUNDS.get(pattern.name)
    if bound is None:
        raise RegistryError(
            f"algorithm 'ideal' supports {sorted(_IDEAL_BOUNDS)}, got {pattern.name!r}"
        )
    return AlgorithmArtifact(collective_time=bound(topology, collective_size))
