"""Unified declarative Run API: specs, registries, runner, and caching.

This package is the single front door for executing collective-communication
scenarios.  Describe a run as data, then execute it::

    from repro.api import RunSpec, TopologySpec, CollectiveSpec, AlgorithmSpec, run

    spec = RunSpec(
        topology=TopologySpec(name="mesh", params={"dims": [3, 3]}),
        collective=CollectiveSpec(name="all_reduce", collective_size=64e6),
        algorithm=AlgorithmSpec(name="tacos"),
    )
    result = run(spec)
    print(result.summary())

Specs round-trip through JSON (``spec.to_json()`` / ``RunSpec.from_json``),
so the same document drives the CLI, batch sweeps (:func:`run_batch`, with
optional thread parallelism and :class:`ResultCache`), and future services.
New topologies, collectives, and algorithms plug in through the registries'
``register`` decorator hook.
"""

from repro.api.builtins import build_custom_topology, parse_token, parse_topology_spec
from repro.api.cache import ArtifactStore, ResultCache
from repro.api.parallel import (
    BACKENDS,
    ExecutionBackend,
    execution_scope,
    map_parallel,
    resolve_backend,
)
from repro.api.registry import (
    ALGORITHMS,
    COLLECTIVES,
    SYNTHESIZERS,
    TOPOLOGIES,
    AlgorithmArtifact,
    Registry,
    RegistryEntry,
    normalize_name,
)
from repro.api.runner import (
    RunResult,
    build_algorithm_artifact,
    build_collective,
    build_topology,
    run,
    run_batch,
)
from repro.api.specs import (
    AlgorithmSpec,
    CollectiveSpec,
    RunSpec,
    SimulationSpec,
    TopologySpec,
    parse_size,
    topology_to_spec,
)

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "COLLECTIVES",
    "SYNTHESIZERS",
    "TOPOLOGIES",
    "AlgorithmArtifact",
    "AlgorithmSpec",
    "ArtifactStore",
    "CollectiveSpec",
    "ExecutionBackend",
    "Registry",
    "RegistryEntry",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SimulationSpec",
    "TopologySpec",
    "build_algorithm_artifact",
    "build_collective",
    "build_custom_topology",
    "build_topology",
    "execution_scope",
    "map_parallel",
    "normalize_name",
    "parse_size",
    "parse_token",
    "parse_topology_spec",
    "resolve_backend",
    "run",
    "run_batch",
    "topology_to_spec",
]
