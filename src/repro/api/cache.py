"""Process-safe, spec-hash-addressed artifact store and the result cache on top.

Two layers:

* :class:`ArtifactStore` — the on-disk layer.  Every artifact is addressed by
  a :meth:`~repro.api.specs.RunSpec.spec_hash` key and stored as either a
  strict-JSON document (``<key>.json``) or a columnar numpy payload
  (``<key>.<name>.npz`` — raw arrays, never pickles).  Writes go to a unique
  temporary file and are renamed into place atomically under an advisory
  file lock, so any number of worker *processes* can share one directory:
  readers never observe a torn file, and concurrent writers of the same key
  serialize instead of corrupting each other.
* :class:`ResultCache` — the in-memory dictionary (always on) plus an
  optional :class:`ArtifactStore`, keeping the historical ``get``/``put``
  API of the run layer.  Cache reads return results flagged ``cached=True``;
  corrupt or unreadable disk entries are treated as misses.

Beyond run results, the store persists synthesized algorithms as columnar
``.npz`` payloads (:meth:`ResultCache.put_algorithm` /
:meth:`ResultCache.load_algorithm`), so repeated sessions — and concurrent
sweep workers — share synthesis work, not just its timing summary.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["ArtifactStore", "ResultCache"]


class _FileLock:
    """Advisory exclusive lock on a sidecar file (POSIX ``flock``).

    Serializes writers of one store across *processes*.  Where ``fcntl`` is
    unavailable the lock degrades to a no-op — writes remain torn-free (each
    is an atomic rename of a unique temporary file) but last-writer-wins races
    are no longer ordered.
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        self._handle: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._handle = os.open(str(self._path), os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._handle, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle, fcntl.LOCK_UN)
            os.close(self._handle)
            self._handle = None


class ArtifactStore:
    """Hash-addressed directory of JSON documents and columnar array payloads.

    Parameters
    ----------
    directory:
        Root of the store; created on first write.
    """

    #: Name of the advisory write-lock sidecar file.
    LOCK_NAME = ".lock"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._tmp_counter = 0
        self._tmp_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Write machinery
    # ------------------------------------------------------------------
    def lock(self) -> _FileLock:
        """The store-wide advisory writer lock (held across one write)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        return _FileLock(self.directory / self.LOCK_NAME)

    def _tmp_path(self, final: Path) -> Path:
        """A collision-free temporary name unique per process, thread, and call."""
        with self._tmp_lock:
            self._tmp_counter += 1
            serial = self._tmp_counter
        return final.parent / (
            f".{final.name}.{os.getpid()}.{threading.get_ident()}.{serial}.tmp"
        )

    def _write_atomic(self, path: Path, data: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            with self.lock():
                os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed write never leaves droppings
                tmp.unlink()

    # ------------------------------------------------------------------
    # JSON documents
    # ------------------------------------------------------------------
    def _json_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def write_json(self, key: str, payload: Dict[str, Any], *, strict: bool = True) -> Path:
        """Persist ``payload`` under ``key`` as sorted JSON (atomic).

        ``strict`` (the default) rejects NaN/Infinity so artifacts stay valid
        strict JSON; pass ``strict=False`` for documents that may carry
        legitimate non-finite values (e.g. the infinite bandwidth of a
        zero-time run result, which ``json.loads`` round-trips).
        """
        path = self._json_path(key)
        text = json.dumps(payload, sort_keys=True, allow_nan=not strict)
        self._write_atomic(path, text.encode("utf-8"))
        return path

    def read_json(self, key: str) -> Optional[Dict[str, Any]]:
        """The JSON document stored under ``key``, or ``None`` (corrupt = miss)."""
        try:
            return json.loads(self._json_path(key).read_text())
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Columnar array payloads
    # ------------------------------------------------------------------
    def _npz_path(self, key: str, name: str) -> Path:
        return self.directory / f"{key}.{name}.npz"

    def write_arrays(self, key: str, name: str, arrays: Dict[str, np.ndarray]) -> Path:
        """Persist named numpy columns under ``key`` as a ``.npz`` (atomic).

        The payload is a plain (uncompressed) zip of raw arrays —
        ``allow_pickle`` stays off at both ends, so object arrays are
        rejected on write and nothing executes on load.
        """
        path = self._npz_path(key, name)
        payload = {field: np.asarray(column) for field, column in arrays.items()}
        for field, column in payload.items():
            if column.dtype.hasobject:
                # np.savez would silently pickle these; the store's contract
                # is raw columns only (nothing executes on load).
                raise ValueError(
                    f"artifact column {field!r} has object dtype; "
                    "only plain numeric/string columns can be stored"
                )
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        self._write_atomic(path, buffer.getvalue())
        return path

    def read_arrays(self, key: str, name: str) -> Optional[Dict[str, np.ndarray]]:
        """The columns stored under ``(key, name)``, or ``None`` (corrupt = miss)."""
        try:
            with np.load(self._npz_path(key, name), allow_pickle=False) as payload:
                return {field: payload[field] for field in payload.files}
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Keys with a JSON document present, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def _entries(self) -> Iterator[Path]:
        yield from self.directory.glob("*.json")
        yield from self.directory.glob("*.npz")

    def clear(self) -> None:
        """Delete every stored artifact (JSON and npz), keeping the directory."""
        if not self.directory.is_dir():
            return
        with self.lock():
            for path in self._entries():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent delete
                    pass

    def __repr__(self) -> str:
        return f"ArtifactStore(directory={str(self.directory)!r})"


class ResultCache:
    """In-memory plus optional on-disk cache of :class:`RunResult` objects.

    Parameters
    ----------
    directory:
        When given, results are also persisted through a process-safe
        :class:`ArtifactStore` under this directory (created on demand),
        surviving process restarts and shared safely between concurrent
        workers.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.store = ArtifactStore(self.directory) if self.directory is not None else None
        self._memory: Dict[str, "RunResult"] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, spec: "RunSpec") -> Optional["RunResult"]:
        """Cached result for ``spec``, flagged ``cached=True``, or None."""
        key = spec.spec_hash()
        with self._lock:
            result = self._memory.get(key)
        if result is None and self.store is not None:
            result = self._read_disk(key)
            if result is not None:
                with self._lock:
                    self._memory[key] = result
        with self._lock:
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
        return dataclasses.replace(result, cached=True)

    def put(self, result: "RunResult") -> None:
        """Store ``result`` under its spec's hash (memory and, if set, disk)."""
        key = result.spec.spec_hash()
        stored = dataclasses.replace(result, cached=False)
        with self._lock:
            self._memory[key] = stored
        if self.store is not None:
            self.store.write_json(key, stored.to_dict(), strict=False)

    def absorb(self, result: "RunResult") -> None:
        """Fold an externally computed result into the in-memory layer only.

        For results that are already persisted — e.g. computed by a worker
        process whose own :class:`ResultCache` wrote through the shared
        artifact store — so the calling cache gains the memory-layer hit
        without re-serializing and re-writing the disk entry.
        """
        key = result.spec.spec_hash()
        with self._lock:
            self._memory[key] = dataclasses.replace(result, cached=False)

    def _read_disk(self, key: str) -> Optional["RunResult"]:
        from repro.api.runner import RunResult

        data = self.store.read_json(key)
        if data is None:
            return None
        try:
            return dataclasses.replace(RunResult.from_dict(data), cached=False)
        except (ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Algorithm artifacts (columnar .npz payloads)
    # ------------------------------------------------------------------
    #: npz payload name under which the transfer columns are stored.
    ALGORITHM_ARTIFACT = "algorithm"

    def put_algorithm(self, spec: "RunSpec", algorithm: "CollectiveAlgorithm") -> None:
        """Persist a synthesized algorithm's transfer columns under the spec hash.

        A no-op without a disk store (the in-memory layer caches results, not
        algorithms).  The table is stored as raw columns plus the scalar
        fields needed to rebuild a :class:`~repro.core.algorithm.CollectiveAlgorithm`.
        """
        if self.store is None:
            return
        table = algorithm.table
        self.store.write_arrays(
            spec.spec_hash(),
            self.ALGORITHM_ARTIFACT,
            {
                "starts": table.starts,
                "ends": table.ends,
                "chunks": table.chunks,
                "sources": table.sources,
                "dests": table.dests,
                "scalars": np.asarray(
                    [float(algorithm.num_npus), float(algorithm.chunk_size), float(algorithm.collective_size)]
                ),
                "names": np.asarray([algorithm.pattern_name, algorithm.topology_name]),
                # Metadata rides along as JSON (tuples come back as lists):
                # an All-Reduce algorithm is unverifiable without its
                # phase_boundary, so dropping this would defeat the sharing.
                "metadata": np.asarray(
                    [json.dumps(algorithm.metadata, default=str, allow_nan=False)]
                ),
            },
        )

    def load_algorithm(self, spec: "RunSpec") -> Optional["CollectiveAlgorithm"]:
        """Rebuild the stored algorithm for ``spec``, or ``None`` when absent."""
        if self.store is None:
            return None
        arrays = self.store.read_arrays(spec.spec_hash(), self.ALGORITHM_ARTIFACT)
        if arrays is None:
            return None
        from repro.core.algorithm import CollectiveAlgorithm
        from repro.core.transfers import TransferTable

        try:
            table = TransferTable.from_columns(
                arrays["starts"], arrays["ends"], arrays["chunks"], arrays["sources"], arrays["dests"]
            )
            scalars = arrays["scalars"]
            names = arrays["names"]
            metadata = json.loads(str(arrays["metadata"][0])) if "metadata" in arrays else {}
            return CollectiveAlgorithm.from_table(
                table,
                num_npus=int(scalars[0]),
                chunk_size=float(scalars[1]),
                collective_size=float(scalars[2]),
                pattern_name=str(names[0]),
                topology_name=str(names[1]),
                metadata=metadata,
            )
        except (KeyError, IndexError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer (and, when ``disk=True``, the stored files)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
        if disk and self.store is not None:
            self.store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        where = f", directory={str(self.directory)!r}" if self.directory else ""
        return f"ResultCache(entries={len(self)}, hits={self.hits}, misses={self.misses}{where})"
