"""Result cache keyed by :meth:`RunSpec.spec_hash`.

Two layers: an in-memory dictionary (always on) and an optional on-disk JSON
store, one ``<hash>.json`` file per result, shared between processes.  Cache
reads return results flagged ``cached=True``; corrupt or unreadable disk
entries are treated as misses.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["ResultCache"]


class ResultCache:
    """In-memory plus optional on-disk cache of :class:`RunResult` objects.

    Parameters
    ----------
    directory:
        When given, results are also persisted as JSON files under this
        directory (created on demand), surviving process restarts.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memory: Dict[str, "RunResult"] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, spec: "RunSpec") -> Optional["RunResult"]:
        """Cached result for ``spec``, flagged ``cached=True``, or None."""
        key = spec.spec_hash()
        with self._lock:
            result = self._memory.get(key)
        if result is None and self.directory is not None:
            result = self._read_disk(key)
            if result is not None:
                with self._lock:
                    self._memory[key] = result
        with self._lock:
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
        return dataclasses.replace(result, cached=True)

    def put(self, result: "RunResult") -> None:
        """Store ``result`` under its spec's hash (memory and, if set, disk)."""
        key = result.spec.spec_hash()
        stored = dataclasses.replace(result, cached=False)
        with self._lock:
            self._memory[key] = stored
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"{key}.json"
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(stored.to_dict(), sort_keys=True))
            tmp.replace(path)

    def _read_disk(self, key: str) -> Optional["RunResult"]:
        from repro.api.runner import RunResult

        path = self.directory / f"{key}.json"
        try:
            data = json.loads(path.read_text())
            return dataclasses.replace(RunResult.from_dict(data), cached=False)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer (and, when ``disk=True``, the JSON files)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        where = f", directory={str(self.directory)!r}" if self.directory else ""
        return f"ResultCache(entries={len(self)}, hits={self.hits}, misses={self.misses}{where})"
