"""Name-based registries for topologies, collectives, algorithms, synthesizers.

Every pluggable piece of the library is reachable through a string name so
that declarative :class:`~repro.api.specs.RunSpec` documents (and the CLI)
can drive it.  Third-party code extends the system with the decorator hook::

    from repro.api import TOPOLOGIES

    @TOPOLOGIES.register("my_cluster", positional=("num_npus",))
    def build_my_cluster(num_npus: int) -> Topology:
        ...

Names are normalized (case-insensitive, ``-``/space become ``_``) and
entries may declare aliases, so ``"TACCL-like"`` and ``"taccl_like"`` resolve
to the same entry.  Unknown names raise :class:`~repro.errors.RegistryError`
listing every available entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm import CollectiveAlgorithm
from repro.errors import RegistryError
from repro.simulator.schedule import LogicalSchedule

__all__ = [
    "normalize_name",
    "RegistryEntry",
    "Registry",
    "AlgorithmArtifact",
    "TOPOLOGIES",
    "COLLECTIVES",
    "ALGORITHMS",
    "SYNTHESIZERS",
]


def normalize_name(name: str) -> str:
    """Canonical registry key: lower-case with ``-`` and spaces as ``_``."""
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered object plus its lookup metadata.

    Attributes
    ----------
    name:
        Canonical (normalized) name.
    obj:
        The registered callable or class.
    aliases:
        Alternative normalized names resolving to this entry.
    description:
        One-line human description shown by ``tacos-repro list``.
    metadata:
        Free-form extras; topology builders use ``positional`` (a tuple of
        parameter names) to support ``"ring:8"``-style CLI shorthand.
    """

    name: str
    obj: Any
    aliases: Tuple[str, ...] = ()
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """A mapping from normalized names (and aliases) to registered objects."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        obj: Optional[Any] = None,
        *,
        aliases: Sequence[str] = (),
        description: str = "",
        **metadata: Any,
    ) -> Callable[[Any], Any]:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Duplicate names (or aliases colliding with existing names) raise
        :class:`RegistryError` to catch accidental double registration.
        """

        def _register(target: Any) -> Any:
            key = normalize_name(name)
            if key in self._entries or key in self._aliases:
                raise RegistryError(f"{self.kind} {name!r} is already registered")
            normalized_aliases = tuple(normalize_name(alias) for alias in aliases)
            for alias in normalized_aliases:
                if alias in self._entries or alias in self._aliases:
                    raise RegistryError(
                        f"{self.kind} alias {alias!r} collides with an existing entry"
                    )
            doc = (getattr(target, "__doc__", "") or "").strip()
            entry = RegistryEntry(
                name=key,
                obj=target,
                aliases=normalized_aliases,
                description=description or (doc.splitlines()[0] if doc else ""),
                metadata=dict(metadata),
            )
            self._entries[key] = entry
            for alias in normalized_aliases:
                self._aliases[alias] = key
            return target

        if obj is not None:
            return _register(obj)
        return _register

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests and plugin reloads)."""
        key = self._resolve(name)
        entry = self._entries.pop(key)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> str:
        key = normalize_name(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            available = ", ".join(self.names())
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {available or '(none registered)'}"
            )
        return key

    def entry(self, name: str) -> RegistryEntry:
        """Full entry (object plus metadata) for ``name``."""
        return self._entries[self._resolve(name)]

    def get(self, name: str) -> Any:
        """The registered object for ``name`` (raises :class:`RegistryError`)."""
        return self.entry(name).obj

    def canonical_name(self, name: str) -> str:
        """The canonical registry name ``name`` resolves to."""
        return self._resolve(name)

    def names(self) -> List[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """All entries in canonical-name order."""
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        key = normalize_name(name)
        return key in self._entries or key in self._aliases

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, entries={self.names()})"


@dataclass
class AlgorithmArtifact:
    """Uniform output of every registered algorithm builder.

    Exactly one of the three payload shapes is populated:

    * ``algorithm`` — a physically-routed, timed :class:`CollectiveAlgorithm`
      (TACOS and other synthesizers);
    * ``schedule`` — a topology-unaware :class:`LogicalSchedule` (the basic
      and manually-designed baselines);
    * ``collective_time`` — an analytic bound with no executable form
      (the ideal bound).

    ``trial_stats`` optionally carries the synthesizer's per-trial
    bookkeeping (seed, rounds, collective time, pruned-at-round, wall
    seconds — see :class:`~repro.core.synthesizer.SynthesisResult`) so the
    run layer can surface it without re-synthesizing.
    """

    algorithm: Optional[CollectiveAlgorithm] = None
    schedule: Optional[LogicalSchedule] = None
    collective_time: Optional[float] = None
    synthesis_seconds: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)
    trial_stats: Optional[List[Dict[str, Any]]] = None

    def __post_init__(self) -> None:
        populated = sum(
            value is not None for value in (self.algorithm, self.schedule, self.collective_time)
        )
        if populated != 1:
            raise RegistryError(
                "an AlgorithmArtifact must carry exactly one of algorithm, schedule, "
                f"or collective_time (got {populated})"
            )


#: Topology builders: ``fn(**params) -> Topology``.
TOPOLOGIES = Registry("topology")

#: Collective pattern factories: ``fn(num_npus, chunks_per_npu, **params) -> CollectivePattern``.
COLLECTIVES = Registry("collective")

#: Algorithm builders: ``fn(topology, pattern, collective_size, **params) -> AlgorithmArtifact``.
ALGORITHMS = Registry("algorithm")

#: Synthesizer classes (for callers that want the object, not a run).
SYNTHESIZERS = Registry("synthesizer")
