"""Execute declarative :class:`RunSpec` documents and return uniform results.

:func:`run` is the single execution path behind the CLI, the paper-figure
experiments, and any future service front end: it resolves the spec against
the registries, builds or synthesizes the algorithm, times it with the
congestion-aware simulator, and returns a :class:`RunResult`.
:func:`run_batch` runs many specs with de-duplication, optional
:mod:`concurrent.futures` parallelism, and optional result caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import repro.api.builtins  # noqa: F401  (populates the registries on import)
from repro.api.cache import ResultCache
from repro.api.parallel import BackendSpec, chunk_items, map_parallel, resolve_backend
from repro.api.registry import ALGORITHMS, COLLECTIVES, TOPOLOGIES, AlgorithmArtifact
from repro.api.specs import (
    AlgorithmSpec,
    CollectiveSpec,
    RunSpec,
    SimulationSpec,
    TopologySpec,
)
from repro.collectives.pattern import CollectivePattern
from repro.errors import ReproError, SpecError
from repro.simulator.adapters import simulate_algorithm, simulate_schedule
from repro.topology.link import GIGABYTE
from repro.topology.topology import Topology

__all__ = [
    "RunResult",
    "run",
    "run_batch",
    "build_topology",
    "build_collective",
    "build_algorithm_artifact",
]


@dataclass
class RunResult:
    """Uniform outcome of executing one :class:`RunSpec`.

    Attributes
    ----------
    spec:
        The spec that produced this result.
    algorithm / topology / collective:
        Resolved human-readable names (canonical algorithm name, the built
        topology's display name, the pattern name).
    num_npus:
        Number of NPUs in the resolved topology.
    collective_size:
        Per-NPU collective size in bytes.
    collective_time:
        Simulated (or analytic) collective completion time in seconds.
    bandwidth_gbps:
        Collective bandwidth in GB/s (size / time).
    synthesis_seconds:
        Synthesis wall-clock time when the algorithm was synthesized.
    extras:
        Additional numeric metrics (e.g. average link utilization).
    trial_stats:
        Per-trial synthesis bookkeeping (seed, rounds, collective time,
        pruned-at-round, wall seconds) when the algorithm builder collected
        it — the tacos/guided tiers with ``collect_trial_stats`` or
        ``incumbent_pruning`` on.  ``None`` otherwise.
    cached:
        True when the result was served from a :class:`ResultCache`
        (excluded from equality comparisons).
    """

    spec: RunSpec
    algorithm: str
    topology: str
    collective: str
    num_npus: int
    collective_size: float
    collective_time: float
    bandwidth_gbps: float
    synthesis_seconds: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)
    trial_stats: Optional[List[Dict[str, Any]]] = None
    cached: bool = field(default=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (used by the disk cache and CLI)."""
        data = {
            "spec": self.spec.to_dict(),
            "algorithm": self.algorithm,
            "topology": self.topology,
            "collective": self.collective,
            "num_npus": self.num_npus,
            "collective_size": self.collective_size,
            "collective_time": self.collective_time,
            "bandwidth_gbps": self.bandwidth_gbps,
            "synthesis_seconds": self.synthesis_seconds,
            "extras": dict(self.extras),
        }
        if self.trial_stats is not None:
            data["trial_stats"] = [dict(stats) for stats in self.trial_stats]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            algorithm=data["algorithm"],
            topology=data["topology"],
            collective=data["collective"],
            num_npus=int(data["num_npus"]),
            collective_size=float(data["collective_size"]),
            collective_time=float(data["collective_time"]),
            bandwidth_gbps=float(data["bandwidth_gbps"]),
            synthesis_seconds=data.get("synthesis_seconds"),
            extras=dict(data.get("extras", {})),
            trial_stats=data.get("trial_stats"),
        )

    def summary(self) -> str:
        """One-line human summary of the result."""
        synth = (
            f", synthesized in {self.synthesis_seconds:.3f}s"
            if self.synthesis_seconds is not None
            else ""
        )
        return (
            f"{self.algorithm} {self.collective} on {self.topology} "
            f"({self.collective_size / 1e6:.1f} MB/NPU): "
            f"{self.collective_time * 1e6:.2f} us, {self.bandwidth_gbps:.2f} GB/s{synth}"
        )


# ----------------------------------------------------------------------
# Spec resolution
# ----------------------------------------------------------------------
def build_topology(spec: TopologySpec) -> Topology:
    """Resolve and build the topology described by ``spec``."""
    builder = TOPOLOGIES.get(spec.name)
    try:
        return builder(**spec.params)
    except TypeError as exc:
        raise SpecError(f"bad parameters for topology {spec.name!r}: {exc}") from None


def build_collective(spec: CollectiveSpec, num_npus: int) -> CollectivePattern:
    """Resolve and instantiate the collective pattern described by ``spec``."""
    factory = COLLECTIVES.get(spec.name)
    try:
        return factory(num_npus, spec.chunks_per_npu, **spec.params)
    except TypeError as exc:
        raise SpecError(f"bad parameters for collective {spec.name!r}: {exc}") from None


def build_algorithm_artifact(
    spec: AlgorithmSpec,
    topology: Topology,
    pattern: CollectivePattern,
    collective_size: float,
) -> AlgorithmArtifact:
    """Resolve and invoke the algorithm builder described by ``spec``."""
    builder = ALGORITHMS.get(spec.name)
    try:
        return builder(topology, pattern, collective_size, **spec.params)
    except TypeError as exc:
        raise SpecError(f"bad parameters for algorithm {spec.name!r}: {exc}") from None


def _time_artifact(
    artifact: AlgorithmArtifact,
    topology: Topology,
    simulation: SimulationSpec,
) -> Tuple[float, Dict[str, float]]:
    """Return ``(collective_time, extras)`` for the artifact under ``simulation``."""
    extras = dict(artifact.extras)
    if artifact.collective_time is not None:
        return artifact.collective_time, extras
    if artifact.algorithm is not None and not simulation.simulate:
        return artifact.algorithm.collective_time, extras
    if artifact.algorithm is not None:
        result = simulate_algorithm(
            topology, artifact.algorithm, routing_message_size=simulation.routing_message_size
        )
    elif artifact.schedule is not None:
        if not simulation.simulate:
            raise SpecError(
                "logical schedules carry no intrinsic timing; "
                "simulation cannot be disabled for this algorithm"
            )
        result = simulate_schedule(
            topology, artifact.schedule, routing_message_size=simulation.routing_message_size
        )
    else:  # unreachable: AlgorithmArtifact enforces exactly one payload
        raise SpecError("algorithm artifact carries no payload")
    extras["avg_link_utilization"] = result.average_link_utilization()
    return result.completion_time, extras


def run(spec: RunSpec, *, cache: Optional[ResultCache] = None) -> RunResult:
    """Execute one spec end-to-end; optionally consult/populate ``cache``.

    With a disk-backed cache, a synthesized algorithm's transfer columns are
    persisted alongside the result (``ResultCache.put_algorithm``), so later
    sessions — and concurrent sweep workers sharing the cache directory —
    can reload the actual algorithm, not just its timing summary.
    """
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit

    topology = build_topology(spec.topology)
    pattern = build_collective(spec.collective, topology.num_npus)
    collective_size = spec.collective.collective_size
    artifact = build_algorithm_artifact(spec.algorithm, topology, pattern, collective_size)
    collective_time, extras = _time_artifact(artifact, topology, spec.simulation)

    if collective_time > 0:
        bandwidth_gbps = collective_size / collective_time / GIGABYTE
    else:
        bandwidth_gbps = float("inf")
    result = RunResult(
        spec=spec,
        algorithm=ALGORITHMS.canonical_name(spec.algorithm.name),
        topology=topology.name,
        collective=pattern.name,
        num_npus=topology.num_npus,
        collective_size=collective_size,
        collective_time=collective_time,
        bandwidth_gbps=bandwidth_gbps,
        synthesis_seconds=artifact.synthesis_seconds,
        extras=extras,
        trial_stats=artifact.trial_stats,
    )
    if cache is not None:
        cache.put(result)
        if artifact.algorithm is not None:
            cache.put_algorithm(spec, artifact.algorithm)
    return result


def _run_spec_task(
    cache_directory: Optional[str], return_exceptions: bool, spec: RunSpec
):
    """Module-level batch work item (picklable for the process backend).

    Each worker process opens its own :class:`ResultCache` over the shared
    artifact-store directory — the store's file locking and atomic writes
    make concurrent workers safe — so cache hits and writes behave exactly
    as in the single-process path.
    """
    cache = ResultCache(cache_directory) if cache_directory is not None else None
    if not return_exceptions:
        return run(spec, cache=cache)
    try:
        return run(spec, cache=cache)
    except ReproError as exc:
        return exc


def _run_spec_chunk(
    cache_directory: Optional[str], return_exceptions: bool, specs: List[RunSpec]
) -> List[Any]:
    """Chunked batch work item: one task pickle per spec *chunk*, not per spec.

    The worker opens one :class:`ResultCache` for the whole chunk, so a
    chunk's specs share the in-memory layer on top of the shared on-disk
    store.  Results come back as a list in chunk order — concatenation in
    the parent reproduces the per-spec order exactly.
    """
    cache = ResultCache(cache_directory) if cache_directory is not None else None
    results: List[Any] = []
    for spec in specs:
        if not return_exceptions:
            results.append(run(spec, cache=cache))
            continue
        try:
            results.append(run(spec, cache=cache))
        except ReproError as exc:
            results.append(exc)
    return results


def run_batch(
    specs: Iterable[RunSpec],
    *,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    return_exceptions: bool = False,
    execution: BackendSpec = None,
) -> List[RunResult]:
    """Execute many specs, preserving input order in the returned list.

    Duplicate specs (same content hash) are executed once and share a
    result.  ``execution`` selects the backend for distinct specs —
    ``"serial"``, ``"thread"``, ``"process"`` (real multi-core parallelism),
    or ``"pool"`` (a persistent process pool kept warm across batches);
    without it, ``max_workers`` greater than 1 keeps the historical
    thread-pool behaviour.  Results are identical across backends: specs are
    deterministic and order is restored from the input.

    With the process-based backends, worker processes share the cache through
    its on-disk artifact store (the in-memory layer is per-process); specs
    are submitted in contiguous chunks to amortize per-task IPC, and results
    computed by workers are folded back into the calling cache afterwards.

    With ``return_exceptions=True``, a spec whose execution raises a
    :class:`~repro.errors.ReproError` contributes the exception object to
    the result list instead of aborting the whole batch (mirroring
    ``asyncio.gather``); other exceptions always propagate.
    """
    specs = list(specs)
    index_of: Dict[str, int] = {}
    unique: List[RunSpec] = []
    positions: List[int] = []
    for spec in specs:
        if not isinstance(spec, RunSpec):
            raise SpecError(f"run_batch expects RunSpec items, got {type(spec).__name__}")
        key = spec.spec_hash()
        if key not in index_of:
            index_of[key] = len(unique)
            unique.append(spec)
        positions.append(index_of[key])

    backend = resolve_backend(execution)
    if backend is not None and getattr(backend, "process_based", False):
        # Serve what the calling cache already holds (its in-memory layer is
        # invisible to worker processes) and ship only the misses out.
        results: List[Any] = [None] * len(unique)
        pending = list(range(len(unique)))
        if cache is not None:
            pending = []
            for index, spec in enumerate(unique):
                hit = cache.get(spec)
                if hit is not None:
                    results[index] = hit
                else:
                    pending.append(index)
        if pending:
            directory = (
                str(cache.directory)
                if cache is not None and cache.directory is not None
                else None
            )
            # Chunked submission (order-preserving, see chunk_items): the
            # per-task IPC overhead is amortized over each chunk, which is
            # what makes the warm PoolBackend's dispatch cost thin.
            chunks = chunk_items([unique[index] for index in pending], max_workers)
            computed_chunks = backend.map(
                partial(_run_spec_chunk, directory, return_exceptions),
                chunks,
                max_workers=max_workers,
            )
            computed = [result for chunk in computed_chunks for result in chunk]
            for index, result in zip(pending, computed):
                results[index] = result
                # Fold worker results into the calling cache's memory layer
                # so subsequent same-process lookups hit without re-reading
                # disk; the workers' own caches already persisted the disk
                # entries (when a directory exists).
                if cache is not None and isinstance(result, RunResult):
                    if cache.directory is None:
                        cache.put(result)
                    else:
                        cache.absorb(result)
    else:

        def run_one(spec: RunSpec):
            if not return_exceptions:
                return run(spec, cache=cache)
            try:
                return run(spec, cache=cache)
            except ReproError as exc:
                return exc

        results = map_parallel(
            run_one,  # repro-lint: disable=P201 -- this branch only ever receives the serial/thread backend; the process path above ships a module-level partial
            unique,
            max_workers=max_workers,
            backend=backend,
        )
    return [results[position] for position in positions]
