"""TACOS reproduction: topology-aware collective algorithm synthesis for distributed ML.

The package is organised in layers (bottom-up):

* :mod:`repro.topology` — physical network topologies with alpha-beta links.
* :mod:`repro.collectives` — collective patterns as pre/postconditions.
* :mod:`repro.ten` — the time-expanded network representation.
* :mod:`repro.core` — the TACOS synthesizer (matching + iterative expansion).
* :mod:`repro.simulator` — congestion-aware analytical network simulator.
* :mod:`repro.baselines` — basic and manually designed collective algorithms.
* :mod:`repro.analysis` — ideal bounds, bandwidth, heat maps, utilization.
* :mod:`repro.workloads` — DNN training workload / parallelism model.
* :mod:`repro.api` — the declarative Run API: serializable
  :class:`~repro.api.specs.RunSpec` documents, name-based registries, and
  the :func:`~repro.api.runner.run` / :func:`~repro.api.runner.run_batch`
  execution path with result caching.  This is the recommended front door
  for new code, the CLI, and services.
* :mod:`repro.experiments` — paper table and figure reproduction harness
  (each data point is a :class:`~repro.api.specs.RunSpec` executed through
  :mod:`repro.api`).

The most common entry points — including the Run API — are re-exported here.
"""

from repro.api import (
    AlgorithmSpec,
    CollectiveSpec,
    ResultCache,
    RunResult,
    RunSpec,
    SimulationSpec,
    TopologySpec,
    run,
    run_batch,
    topology_to_spec,
)
from repro.collectives import (
    AllGather,
    AllReduce,
    AllToAll,
    Broadcast,
    CollectivePattern,
    Gather,
    Reduce,
    ReduceScatter,
    Scatter,
)
from repro.core import (
    ChunkTransfer,
    CollectiveAlgorithm,
    TransferTable,
    SynthesisConfig,
    SynthesisResult,
    TacosSynthesizer,
    synthesize,
    verify_algorithm,
)
from repro.errors import (
    CollectiveError,
    ReproError,
    SimulationError,
    SynthesisError,
    TopologyError,
    VerificationError,
    WorkloadError,
)
from repro.topology import (
    DimensionSpec,
    Link,
    Topology,
    build_2d_switch,
    build_3d_rfs,
    build_binary_hypercube,
    build_dgx1,
    build_dragonfly,
    build_fully_connected,
    build_hypercube_3d,
    build_mesh,
    build_mesh_2d,
    build_mesh_3d,
    build_multidim,
    build_ring,
    build_switch,
    build_torus,
    build_torus_2d,
    build_torus_3d,
)

__version__ = "1.10.0"

__all__ = [
    "AlgorithmSpec",
    "AllGather",
    "AllReduce",
    "AllToAll",
    "Broadcast",
    "ChunkTransfer",
    "CollectiveAlgorithm",
    "CollectiveError",
    "CollectivePattern",
    "CollectiveSpec",
    "DimensionSpec",
    "Gather",
    "Link",
    "Reduce",
    "ReduceScatter",
    "ReproError",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "Scatter",
    "SimulationError",
    "SimulationSpec",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisResult",
    "TacosSynthesizer",
    "TransferTable",
    "Topology",
    "TopologyError",
    "TopologySpec",
    "VerificationError",
    "WorkloadError",
    "build_2d_switch",
    "build_3d_rfs",
    "build_binary_hypercube",
    "build_dgx1",
    "build_dragonfly",
    "build_fully_connected",
    "build_hypercube_3d",
    "build_mesh",
    "build_mesh_2d",
    "build_mesh_3d",
    "build_multidim",
    "build_ring",
    "build_switch",
    "build_torus",
    "build_torus_2d",
    "build_torus_3d",
    "run",
    "run_batch",
    "synthesize",
    "topology_to_spec",
    "verify_algorithm",
    "__version__",
]
