"""TACOS reproduction: topology-aware collective algorithm synthesis for distributed ML.

The package is organised in layers (bottom-up):

* :mod:`repro.topology` — physical network topologies with alpha-beta links.
* :mod:`repro.collectives` — collective patterns as pre/postconditions.
* :mod:`repro.ten` — the time-expanded network representation.
* :mod:`repro.core` — the TACOS synthesizer (matching + iterative expansion).
* :mod:`repro.simulator` — congestion-aware analytical network simulator.
* :mod:`repro.baselines` — basic and manually designed collective algorithms.
* :mod:`repro.analysis` — ideal bounds, bandwidth, heat maps, utilization.
* :mod:`repro.workloads` — DNN training workload / parallelism model.
* :mod:`repro.experiments` — paper table and figure reproduction harness.

The most common entry points are re-exported here.
"""

from repro.collectives import (
    AllGather,
    AllReduce,
    AllToAll,
    Broadcast,
    CollectivePattern,
    Gather,
    Reduce,
    ReduceScatter,
    Scatter,
)
from repro.core import (
    ChunkTransfer,
    CollectiveAlgorithm,
    SynthesisConfig,
    SynthesisResult,
    TacosSynthesizer,
    synthesize,
    verify_algorithm,
)
from repro.errors import (
    CollectiveError,
    ReproError,
    SimulationError,
    SynthesisError,
    TopologyError,
    VerificationError,
    WorkloadError,
)
from repro.topology import (
    DimensionSpec,
    Link,
    Topology,
    build_2d_switch,
    build_3d_rfs,
    build_binary_hypercube,
    build_dgx1,
    build_dragonfly,
    build_fully_connected,
    build_hypercube_3d,
    build_mesh,
    build_mesh_2d,
    build_mesh_3d,
    build_multidim,
    build_ring,
    build_switch,
    build_torus,
    build_torus_2d,
    build_torus_3d,
)

__version__ = "1.0.0"

__all__ = [
    "AllGather",
    "AllReduce",
    "AllToAll",
    "Broadcast",
    "ChunkTransfer",
    "CollectiveAlgorithm",
    "CollectiveError",
    "CollectivePattern",
    "DimensionSpec",
    "Gather",
    "Link",
    "Reduce",
    "ReduceScatter",
    "ReproError",
    "Scatter",
    "SimulationError",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisResult",
    "TacosSynthesizer",
    "Topology",
    "TopologyError",
    "VerificationError",
    "WorkloadError",
    "build_2d_switch",
    "build_3d_rfs",
    "build_binary_hypercube",
    "build_dgx1",
    "build_dragonfly",
    "build_fully_connected",
    "build_hypercube_3d",
    "build_mesh",
    "build_mesh_2d",
    "build_mesh_3d",
    "build_multidim",
    "build_ring",
    "build_switch",
    "build_torus",
    "build_torus_2d",
    "build_torus_3d",
    "synthesize",
    "verify_algorithm",
    "__version__",
]
