"""Seed portfolios mined from previously synthesized artifacts.

Every synthesized algorithm persisted through the artifact store
(:meth:`~repro.api.cache.ResultCache.put_algorithm`) carries its winning
seed in the metadata column of the columnar ``.npz`` payload.  The portfolio
reader scans the store for runs on the same *topology family* (``Mesh``,
``Ring``, ``DragonFly``, ...) and returns those seeds in a deterministic
first-seen order.  A seed that won once on a family is a good opening move
on a sibling instance: front-loading it establishes a strong incumbent
early, which is what makes incumbent pruning bite (the winner itself is
unaffected — portfolios only reorder the seed list).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports core)
    from repro.api.cache import ArtifactStore

__all__ = ["topology_family", "winning_seeds"]

#: npz payload name under which ResultCache persists algorithm columns.
_ALGORITHM_ARTIFACT = "algorithm"


def topology_family(topology_name: str) -> str:
    """The family prefix of a topology display name.

    Display names are ``Family(dims...)`` — ``Mesh(6x6)``, ``Ring(16)``,
    ``DragonFly(4x4)`` — so the family is everything before the first
    parenthesis.  Names without a parenthesis are their own family.
    """
    return topology_name.partition("(")[0]


def winning_seeds(store: "ArtifactStore", family: str, limit: int = 8) -> List[int]:
    """Winning seeds of stored algorithms on topology family ``family``.

    Scans the store's JSON documents in sorted key order (deterministic for
    a given store state), keeps runs whose resolved topology belongs to
    ``family``, and reads the winning ``seed`` from the companion algorithm
    ``.npz`` metadata.  Seeds are deduplicated first-seen and truncated to
    ``limit``.  Corrupt or partial entries are skipped — the portfolio is an
    optimization, never a correctness dependency.
    """
    if limit <= 0:
        return []
    seeds: List[int] = []
    seen = set()
    for key in store.keys():  # repro-lint: disable=D101 -- ArtifactStore.keys() returns a sorted list, not a dict view
        document = store.read_json(key)
        if not isinstance(document, dict):
            continue
        topology_name = document.get("topology")
        if not isinstance(topology_name, str) or topology_family(topology_name) != family:
            continue
        arrays = store.read_arrays(key, _ALGORITHM_ARTIFACT)
        if arrays is None or "metadata" not in arrays:
            continue
        try:
            metadata = json.loads(str(arrays["metadata"][0]))
        except (IndexError, ValueError):
            continue
        seed = metadata.get("seed") if isinstance(metadata, dict) else None
        # bool is an int subclass; a JSON true/false is never a seed.
        if not isinstance(seed, int) or isinstance(seed, bool):
            continue
        if seed in seen:
            continue
        seen.add(seed)
        seeds.append(seed)
        if len(seeds) >= limit:
            break
    return seeds
