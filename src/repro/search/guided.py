"""The guided synthesis tier: portfolio-primed, pruned, floor-terminated.

:class:`GuidedSynthesizer` is a drop-in :class:`~repro.core.synthesizer.
TacosSynthesizer` whose search is guided rather than uniform:

* per-trial statistics are always collected (the bench and the portfolio
  both consume them);
* incumbent pruning and floor termination are on by default;
* the seed list is reordered to front-load winning seeds of previously
  synthesized specs on the same topology family (when an artifact store is
  attached).

Everything it does is exact: the trial budget, the seed *set*, and the
strict-``<`` best-of selection are unchanged, so the selected algorithm is
byte-identical to the uniform search over the same (reordered) seed list —
and reordering only matters for ties, which the guided tier resolves by its
own list order, exactly like the uniform tier resolves them by trial index.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import SynthesisEngine, TacosSynthesizer
from repro.search.portfolio import topology_family, winning_seeds
from repro.topology.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports core)
    from repro.api.cache import ArtifactStore

__all__ = ["GuidedSynthesizer"]


class GuidedSynthesizer(TacosSynthesizer):
    """Guided best-of-N synthesis: same winners, far fewer full trials.

    Parameters
    ----------
    config:
        Search configuration.  Defaults to incumbent pruning with floor
        termination over a single trial (raise ``trials`` for a real
        search).  A provided config is upgraded to always collect per-trial
        statistics; pruning/floor flags are otherwise respected as given, so
        ``GuidedSynthesizer(SynthesisConfig(incumbent_pruning=True,
        floor_termination=False, ...))`` behaves exactly as written.
    engine:
        The chunk-state core to drive (same seam as the base class).
    store:
        Optional :class:`~repro.api.cache.ArtifactStore` consulted for the
        seed portfolio.  ``None`` disables portfolios (the seed order is
        then identical to the uniform search).
    portfolio_limit:
        Maximum number of portfolio seeds to front-load.

    Attributes
    ----------
    last_portfolio_seeds:
        The portfolio seeds actually front-loaded by the most recent
        synthesis call (empty when no store/family match).
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        engine: Optional[SynthesisEngine] = None,
        *,
        store: Optional["ArtifactStore"] = None,
        portfolio_limit: int = 8,
    ) -> None:
        if config is None:
            config = SynthesisConfig(
                incumbent_pruning=True,
                floor_termination=True,
                collect_trial_stats=True,
            )
        elif not config.collect_trial_stats:
            config = dataclasses.replace(config, collect_trial_stats=True)
        super().__init__(config, engine)
        self.store = store
        self.portfolio_limit = portfolio_limit
        self.last_portfolio_seeds: List[int] = []

    def _trial_seeds(self, topology: Topology) -> List[int]:
        """Uniform seed list with portfolio seeds moved to the front.

        The returned list is a permutation of the base list plus (possibly)
        portfolio seeds that replace trailing base seeds — its length always
        equals the trial budget, and front-loaded seeds win ties, mirroring
        the uniform tier's earlier-trial-wins-ties rule.
        """
        base = super()._trial_seeds(topology)
        self.last_portfolio_seeds = []
        if self.store is None:
            return base
        portfolio = winning_seeds(
            self.store, topology_family(topology.name), self.portfolio_limit
        )
        if not portfolio:
            return base
        ordered: List[int] = []
        seen = set()
        for seed in portfolio + base:
            if seed in seen:
                continue
            seen.add(seed)
            ordered.append(seed)
        ordered = ordered[: len(base)]
        self.last_portfolio_seeds = [seed for seed in portfolio if seed in set(ordered)]
        return ordered
