"""Guided synthesis search: incumbent pruning, floors, and seed portfolios.

The uniform TACOS search (:class:`~repro.core.synthesizer.TacosSynthesizer`)
runs ``trials`` independent randomized matchings and keeps the best.  This
package layers three exact accelerations on top — the winner is always
byte-identical to the uniform search over the same seed list:

* **Incumbent pruning** (``SynthesisConfig.incumbent_pruning``) — a trial
  aborts the moment a monotone lower bound on its final collective time
  strictly exceeds the best completed trial.
* **Floor termination** (``SynthesisConfig.floor_termination``) — the whole
  search stops once a completed trial meets the round-0 bound, which bounds
  every trial from below.
* **Seed portfolios** (:class:`GuidedSynthesizer`) — winning seeds of
  previously synthesized specs on the same topology family are tried first,
  so a strong incumbent is established early and pruning bites harder.

See docs/determinism.md ("Incumbent pruning is exact") for the exactness
arguments and the ``search`` bench grid for the measured effect.
"""

from repro.search.guided import GuidedSynthesizer
from repro.search.portfolio import topology_family, winning_seeds

__all__ = ["GuidedSynthesizer", "topology_family", "winning_seeds"]
