"""End-to-end training-iteration time model (Fig. 20 and Fig. 21).

A training iteration consists of forward compute, backward compute, and the
exposed collective communication required by the parallelization strategy.
The communication time of each required collective is supplied by a
*collective time provider* — a callable mapping ``(pattern_name, size)`` to
seconds — so the same workload model can be evaluated with Ring, Themis,
TACOS, or the theoretical ideal bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads.models import ModelConfig
from repro.workloads.parallelism import CollectiveRequirement, ParallelismStrategy

__all__ = ["TrainingBreakdown", "training_iteration_time", "CollectiveTimeProvider"]

#: Callable returning the collective execution time in seconds for (pattern, size).
CollectiveTimeProvider = Callable[[str, float], float]


@dataclass
class TrainingBreakdown:
    """Per-iteration training time broken into compute and exposed communication.

    Attributes
    ----------
    forward_compute:
        Forward-pass compute seconds.
    backward_compute:
        Backward-pass compute seconds.
    exposed_communication:
        Total exposed collective seconds on the critical path.
    communication_by_label:
        Exposed communication grouped by the requirement label
        (e.g. ``{"WG Comm": ..., "IG Comm": ...}``), matching Fig. 21's bars.
    """

    forward_compute: float
    backward_compute: float
    exposed_communication: float
    communication_by_label: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total per-iteration training time in seconds."""
        return self.forward_compute + self.backward_compute + self.exposed_communication

    @property
    def compute(self) -> float:
        """Total compute time in seconds."""
        return self.forward_compute + self.backward_compute

    @property
    def communication_fraction(self) -> float:
        """Share of the iteration spent in exposed communication."""
        total = self.total
        return self.exposed_communication / total if total > 0 else 0.0

    def normalized_by(self, reference_total: float) -> "TrainingBreakdown":
        """Return a copy with every component divided by ``reference_total``."""
        if reference_total <= 0:
            raise WorkloadError(f"reference total must be positive, got {reference_total}")
        return TrainingBreakdown(
            forward_compute=self.forward_compute / reference_total,
            backward_compute=self.backward_compute / reference_total,
            exposed_communication=self.exposed_communication / reference_total,
            communication_by_label={
                label: value / reference_total
                for label, value in self.communication_by_label.items()
            },
        )


def training_iteration_time(
    model: ModelConfig,
    strategy: ParallelismStrategy,
    collective_time: CollectiveTimeProvider,
) -> TrainingBreakdown:
    """Compute the per-iteration training time breakdown for ``model``.

    Parameters
    ----------
    model:
        The DNN workload descriptor.
    strategy:
        Parallelization strategy (determines the required collectives).
    collective_time:
        Callable ``(pattern_name, size_bytes) -> seconds`` supplying the
        execution time of each required collective on the target system.
    """
    requirements: List[CollectiveRequirement] = strategy.collectives(model)
    exposed = 0.0
    by_label: Dict[str, float] = {}
    for requirement in requirements:
        duration = collective_time(requirement.pattern, requirement.size)
        if duration < 0:
            raise WorkloadError(
                f"collective time provider returned a negative duration for {requirement}"
            )
        if requirement.exposed:
            exposed += duration
            label = requirement.label or requirement.pattern
            by_label[label] = by_label.get(label, 0.0) + duration
    return TrainingBreakdown(
        forward_compute=model.forward_compute_time,
        backward_compute=model.backward_compute_time,
        exposed_communication=exposed,
        communication_by_label=by_label,
    )
