"""Distributed-training workload model (models, parallelism, iteration time)."""

from repro.workloads.models import MODEL_ZOO, ModelConfig, get_model
from repro.workloads.parallelism import (
    PARALLELISM_COLLECTIVES,
    CollectiveRequirement,
    ParallelismStrategy,
)
from repro.workloads.training import (
    CollectiveTimeProvider,
    TrainingBreakdown,
    training_iteration_time,
)

__all__ = [
    "MODEL_ZOO",
    "PARALLELISM_COLLECTIVES",
    "CollectiveRequirement",
    "CollectiveTimeProvider",
    "ModelConfig",
    "ParallelismStrategy",
    "TrainingBreakdown",
    "get_model",
    "training_iteration_time",
]
