"""Parallelization strategies and the collectives they require (Table III).

Each strategy maps a model onto a set of NPUs and determines which collective
patterns must run per training iteration and how large their payloads are.
Only the communication that is *exposed* (not overlapped with compute) enters
the end-to-end training time; following the paper (Sec. VI-D), data-parallel
gradient synchronization is exposed at the end of every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.models import ModelConfig

__all__ = ["CollectiveRequirement", "ParallelismStrategy", "PARALLELISM_COLLECTIVES"]


@dataclass(frozen=True)
class CollectiveRequirement:
    """One collective a parallelization strategy must execute per iteration.

    Attributes
    ----------
    pattern:
        Collective pattern name: ``"AllReduce"``, ``"AllGather"`` or
        ``"ReduceScatter"``.
    size:
        Per-NPU payload in bytes.
    exposed:
        Whether the collective sits on the critical path (cannot be hidden
        behind compute).
    label:
        Human-readable tag used in breakdowns (e.g. ``"WG Comm"``).
    """

    pattern: str
    size: float
    exposed: bool = True
    label: str = ""


#: Table III — collectives required by each parallelization strategy.
PARALLELISM_COLLECTIVES: Dict[str, Tuple[str, ...]] = {
    "data": ("AllReduce",),
    "tensor": ("AllReduce",),
    "fsdp": ("AllGather", "ReduceScatter"),
    "zero": ("AllGather", "ReduceScatter"),
    "hybrid": ("AllReduce", "AllGather", "ReduceScatter"),
}


@dataclass(frozen=True)
class ParallelismStrategy:
    """A parallelization strategy applied to a model on ``num_npus`` NPUs."""

    name: str
    num_npus: int

    def __post_init__(self) -> None:
        if self.name not in PARALLELISM_COLLECTIVES:
            raise WorkloadError(
                f"unknown parallelism strategy {self.name!r}; available: {sorted(PARALLELISM_COLLECTIVES)}"
            )
        if self.num_npus < 2:
            raise WorkloadError(f"parallel training needs at least 2 NPUs, got {self.num_npus}")

    def collectives(self, model: ModelConfig) -> List[CollectiveRequirement]:
        """Per-iteration collective requirements for ``model``.

        Data parallelism All-Reduces the full gradient.  Tensor parallelism
        All-Reduces activations of comparable size to the gradients (a
        simplification that keeps the payload model-derived).  FSDP / ZeRO
        replace the All-Reduce with an All-Gather plus a Reduce-Scatter of the
        same total volume.  Hybrid runs a data-parallel All-Reduce for weight
        gradients and an All-Gather/Reduce-Scatter pair for input gradients.
        """
        gradient_bytes = model.gradient_bytes
        if self.name == "data":
            return [
                CollectiveRequirement("AllReduce", gradient_bytes, exposed=True, label="WG Comm"),
            ]
        if self.name == "tensor":
            return [
                CollectiveRequirement("AllReduce", gradient_bytes, exposed=True, label="IG Comm"),
            ]
        if self.name in ("fsdp", "zero"):
            return [
                CollectiveRequirement("AllGather", gradient_bytes, exposed=True, label="WG Comm"),
                CollectiveRequirement("ReduceScatter", gradient_bytes, exposed=True, label="WG Comm"),
            ]
        # hybrid
        return [
            CollectiveRequirement("AllReduce", gradient_bytes, exposed=True, label="WG Comm"),
            CollectiveRequirement("AllGather", gradient_bytes / 2, exposed=True, label="IG Comm"),
            CollectiveRequirement("ReduceScatter", gradient_bytes / 2, exposed=True, label="IG Comm"),
        ]
