"""DNN model descriptors used by the end-to-end training experiments.

The paper evaluates GNMT, ResNet-50, Turing-NLG, and MSFT-1T (Fig. 20 and
Fig. 21).  Reproducing their exact compute kernels is out of scope and not
needed: the figures report *normalized* training time, so only the ratio
between per-iteration compute time and the gradient bytes that must be
All-Reduced matters.  Each descriptor therefore records

* the parameter count (which determines the data-parallel All-Reduce size),
* synthetic forward and backward compute times per iteration per NPU, chosen
  so the compute:communication ratios qualitatively match the paper's
  breakdown (communication-dominated for GNMT/Turing-NLG/MSFT-1T,
  compute-heavier for ResNet-50).

The numbers are documented substitutions (see DESIGN.md): they fix the
*scale* of the workload, while who-wins comparisons across collective
algorithms are driven entirely by the simulated communication time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import WorkloadError

__all__ = ["ModelConfig", "MODEL_ZOO", "get_model"]


@dataclass(frozen=True)
class ModelConfig:
    """Description of one DNN training workload.

    Attributes
    ----------
    name:
        Model name as used in the paper.
    parameter_count:
        Number of trainable parameters.
    bytes_per_parameter:
        Gradient element size in bytes (2 for fp16/bf16 gradients, 4 for fp32).
    forward_compute_time:
        Per-iteration forward-pass compute time per NPU, in seconds.
    backward_compute_time:
        Per-iteration backward-pass compute time per NPU, in seconds.
    """

    name: str
    parameter_count: float
    bytes_per_parameter: float
    forward_compute_time: float
    backward_compute_time: float

    def __post_init__(self) -> None:
        if self.parameter_count <= 0:
            raise WorkloadError(f"{self.name}: parameter count must be positive")
        if self.bytes_per_parameter <= 0:
            raise WorkloadError(f"{self.name}: bytes per parameter must be positive")
        if self.forward_compute_time < 0 or self.backward_compute_time < 0:
            raise WorkloadError(f"{self.name}: compute times must be non-negative")

    @property
    def gradient_bytes(self) -> float:
        """Bytes of gradients produced per iteration (the All-Reduce payload)."""
        return self.parameter_count * self.bytes_per_parameter

    @property
    def compute_time(self) -> float:
        """Total per-iteration compute time (forward + backward) per NPU."""
        return self.forward_compute_time + self.backward_compute_time


#: Models evaluated in the paper, with documented synthetic compute times.
MODEL_ZOO: Dict[str, ModelConfig] = {
    "GNMT": ModelConfig(
        name="GNMT",
        parameter_count=278e6,
        bytes_per_parameter=2.0,
        forward_compute_time=2.0e-3,
        backward_compute_time=4.0e-3,
    ),
    "ResNet-50": ModelConfig(
        name="ResNet-50",
        parameter_count=25.6e6,
        bytes_per_parameter=2.0,
        forward_compute_time=3.0e-3,
        backward_compute_time=6.0e-3,
    ),
    "Turing-NLG": ModelConfig(
        name="Turing-NLG",
        parameter_count=17.2e9,
        bytes_per_parameter=2.0,
        forward_compute_time=120.0e-3,
        backward_compute_time=240.0e-3,
    ),
    "MSFT-1T": ModelConfig(
        name="MSFT-1T",
        parameter_count=1.0e12,
        bytes_per_parameter=2.0,
        forward_compute_time=2.0,
        backward_compute_time=4.0,
    ),
}


def get_model(name: str) -> ModelConfig:
    """Look up a model descriptor by its paper name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise WorkloadError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}") from None
