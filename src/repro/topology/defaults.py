"""Default link parameters used across topology builders.

The paper's footnote 8 fixes the default configuration for all experiments
unless stated otherwise: ``alpha = 0.5 us`` and ``1/beta = 50 GB/s``.
"""

from __future__ import annotations

__all__ = ["DEFAULT_ALPHA", "DEFAULT_BANDWIDTH_GBPS"]

#: Default link latency in seconds (0.5 microseconds).
DEFAULT_ALPHA = 0.5e-6

#: Default link bandwidth in GB/s.
DEFAULT_BANDWIDTH_GBPS = 50.0
