"""Multi-dimensional (hierarchical) topology composition.

State-of-the-art ML clusters stack several network dimensions — e.g. the
paper's 3D-RFS topology is Ring x FullyConnected x Switch with per-dimension
bandwidths — and the 2D Switch of Fig. 15 stacks two switch dimensions.  This
module composes per-dimension connectivity patterns into a single flat
:class:`~repro.topology.topology.Topology`.

NPU indices follow the mixed-radix convention of
:func:`repro.topology.builders.mesh.grid_index`: the first dimension varies
fastest.  For every dimension, every *fiber* (the set of NPUs that differ only
in that dimension's coordinate) is wired with that dimension's pattern and
link parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.builders.mesh import grid_coordinates, grid_index
from repro.topology.defaults import DEFAULT_ALPHA
from repro.topology.topology import Topology

__all__ = ["DimensionSpec", "build_multidim", "build_3d_rfs", "build_2d_switch"]

#: Connectivity patterns supported for a single dimension.
_SUPPORTED_KINDS = ("ring", "unidirectional_ring", "fully_connected", "switch", "line")


@dataclass(frozen=True)
class DimensionSpec:
    """Description of one dimension of a hierarchical topology.

    Attributes
    ----------
    kind:
        One of ``"ring"`` (bidirectional ring), ``"unidirectional_ring"``,
        ``"fully_connected"``, ``"switch"`` (degree-``unwind_degree`` unwound
        switch, Sec. IV-G) or ``"line"`` (mesh dimension without wraparound).
    size:
        Number of NPUs along this dimension.
    bandwidth_gbps:
        Link bandwidth of this dimension in GB/s (per switch port for
        ``"switch"`` dimensions, per link otherwise).
    alpha:
        Link latency of this dimension in seconds.
    unwind_degree:
        Only used by ``"switch"`` dimensions; defaults to 1.
    """

    kind: str
    size: int
    bandwidth_gbps: float
    alpha: float = DEFAULT_ALPHA
    unwind_degree: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _SUPPORTED_KINDS:
            raise TopologyError(f"unknown dimension kind {self.kind!r}; expected one of {_SUPPORTED_KINDS}")
        if self.size < 1:
            raise TopologyError(f"dimension size must be positive, got {self.size}")
        if self.bandwidth_gbps <= 0:
            raise TopologyError(f"dimension bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.kind == "switch" and not 1 <= self.unwind_degree <= max(1, self.size - 1):
            raise TopologyError(
                f"switch unwind degree {self.unwind_degree} invalid for dimension of size {self.size}"
            )

    def edges(self) -> List[Tuple[int, int, float]]:
        """Directed edges ``(src, dest, bandwidth_gbps)`` of this dimension's pattern.

        Indices are local to the dimension (``0 .. size-1``).
        """
        edges: List[Tuple[int, int, float]] = []
        size = self.size
        if size == 1:
            return edges
        if self.kind in ("ring", "unidirectional_ring"):
            for i in range(size):
                nxt = (i + 1) % size
                edges.append((i, nxt, self.bandwidth_gbps))
                if self.kind == "ring":
                    edges.append((nxt, i, self.bandwidth_gbps))
            if size == 2:
                # A 2-ring would duplicate links; keep a single bidirectional pair.
                deduped = {(src, dest): bw for src, dest, bw in edges}
                edges = [(src, dest, bw) for (src, dest), bw in deduped.items()]
        elif self.kind == "fully_connected":
            for src in range(size):
                for dest in range(size):
                    if src != dest:
                        edges.append((src, dest, self.bandwidth_gbps))
        elif self.kind == "switch":
            shared = self.bandwidth_gbps / self.unwind_degree
            for src in range(size):
                for offset in range(1, self.unwind_degree + 1):
                    edges.append((src, (src + offset) % size, shared))
        elif self.kind == "line":
            for i in range(size - 1):
                edges.append((i, i + 1, self.bandwidth_gbps))
                edges.append((i + 1, i, self.bandwidth_gbps))
        return edges


def build_multidim(dimensions: Sequence[DimensionSpec], name: str = "") -> Topology:
    """Compose a hierarchical topology from per-dimension specifications."""
    dimensions = list(dimensions)
    if not dimensions:
        raise TopologyError("at least one dimension is required")
    dims = [spec.size for spec in dimensions]
    num_npus = 1
    for size in dims:
        num_npus *= size
    if num_npus < 2:
        raise TopologyError("a multi-dimensional topology needs at least 2 NPUs")
    shape = "x".join(str(spec.size) for spec in dimensions)
    kinds = "-".join(spec.kind for spec in dimensions)
    topology = Topology(num_npus, name=name or f"MultiDim({kinds};{shape})")

    for axis, spec in enumerate(dimensions):
        edges = spec.edges()
        if not edges:
            continue
        for index in range(num_npus):
            coords = grid_coordinates(index, dims)
            if coords[axis] != 0:
                continue  # enumerate each fiber exactly once, from its 0-coordinate NPU
            fiber = []
            for position in range(spec.size):
                member = list(coords)
                member[axis] = position
                fiber.append(grid_index(member, dims))
            seen = set()
            for src_local, dest_local, bandwidth in edges:
                key = (fiber[src_local], fiber[dest_local])
                if key in seen:
                    continue
                seen.add(key)
                topology.add_link(key[0], key[1], alpha=spec.alpha, bandwidth_gbps=bandwidth)
    return topology


def build_3d_rfs(
    ring_size: int = 2,
    fc_size: int = 4,
    switch_size: int = 8,
    *,
    bandwidths_gbps: Iterable[float] = (200.0, 100.0, 50.0),
    alpha: float = DEFAULT_ALPHA,
    switch_unwind_degree: int = 1,
) -> Topology:
    """Build the paper's 3D Ring-FC-Switch topology (Table IV, Fig. 15, Table V).

    The default 2 x 4 x 8 configuration with [200, 100, 50] GB/s matches
    Fig. 15; Table V scales the last (switch) dimension to add nodes.
    """
    ring_bw, fc_bw, switch_bw = tuple(bandwidths_gbps)
    dimensions = [
        DimensionSpec(kind="ring", size=ring_size, bandwidth_gbps=ring_bw, alpha=alpha),
        DimensionSpec(kind="fully_connected", size=fc_size, bandwidth_gbps=fc_bw, alpha=alpha),
        DimensionSpec(
            kind="switch",
            size=switch_size,
            bandwidth_gbps=switch_bw,
            alpha=alpha,
            unwind_degree=switch_unwind_degree,
        ),
    ]
    return build_multidim(dimensions, name=f"3D-RFS({ring_size}x{fc_size}x{switch_size})")


def build_2d_switch(
    first_size: int = 8,
    second_size: int = 4,
    *,
    bandwidths_gbps: Iterable[float] = (300.0, 25.0),
    alpha: float = DEFAULT_ALPHA,
    unwind_degrees: Iterable[int] = (1, 1),
) -> Topology:
    """Build the 2D Switch topology of Fig. 15 (8 x 4, [300, 25] GB/s)."""
    first_bw, second_bw = tuple(bandwidths_gbps)
    first_degree, second_degree = tuple(unwind_degrees)
    dimensions = [
        DimensionSpec(
            kind="switch", size=first_size, bandwidth_gbps=first_bw, alpha=alpha, unwind_degree=first_degree
        ),
        DimensionSpec(
            kind="switch", size=second_size, bandwidth_gbps=second_bw, alpha=alpha, unwind_degree=second_degree
        ),
    ]
    return build_multidim(dimensions, name=f"2DSwitch({first_size}x{second_size})")
