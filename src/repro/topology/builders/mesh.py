"""Mesh (grid, no wraparound) topology builders.

Meshes are the paper's canonical *asymmetric* topologies: corner NPUs have
degree 2, edge NPUs degree 3, and interior NPUs degree 4 in the 2D case, so
no basic algorithm matches them perfectly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_mesh_2d", "build_mesh_3d", "build_mesh", "grid_coordinates", "grid_index"]


def grid_index(coords: Sequence[int], dims: Sequence[int]) -> int:
    """Convert multi-dimensional grid coordinates to a flat NPU index.

    The first dimension varies fastest (mixed-radix, little-endian), i.e.
    ``index = c0 + c1 * d0 + c2 * d0 * d1 + ...``.
    """
    if len(coords) != len(dims):
        raise TopologyError(f"coordinate rank {len(coords)} does not match dims rank {len(dims)}")
    index = 0
    stride = 1
    for coord, dim in zip(coords, dims):
        if not 0 <= coord < dim:
            raise TopologyError(f"coordinate {coord} out of range for dimension of size {dim}")
        index += coord * stride
        stride *= dim
    return index


def grid_coordinates(index: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Convert a flat NPU index back to grid coordinates (inverse of :func:`grid_index`)."""
    coords = []
    remaining = index
    for dim in dims:
        coords.append(remaining % dim)
        remaining //= dim
    if remaining != 0:
        raise TopologyError(f"index {index} out of range for dims {tuple(dims)}")
    return tuple(coords)


def build_mesh(
    dims: Sequence[int],
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build an n-dimensional mesh (grid without wraparound).

    Neighbouring NPUs along every dimension are connected with a pair of
    opposite-direction links.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(f"mesh dimensions must be positive, got {dims}")
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    if num_npus < 2:
        raise TopologyError("a mesh needs at least 2 NPUs")
    shape = "x".join(str(d) for d in dims)
    topology = Topology(num_npus, name=f"Mesh({shape})")
    for index in range(num_npus):
        coords = grid_coordinates(index, dims)
        for axis, dim in enumerate(dims):
            if coords[axis] + 1 < dim:
                neighbour = list(coords)
                neighbour[axis] += 1
                other = grid_index(neighbour, dims)
                topology.add_link(index, other, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
                topology.add_link(other, index, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology


def build_mesh_2d(
    rows: int,
    cols: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a 2D mesh of ``rows x cols`` NPUs."""
    return build_mesh((cols, rows), alpha=alpha, bandwidth_gbps=bandwidth_gbps)


def build_mesh_3d(
    x: int,
    y: int,
    z: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a 3D mesh of ``x * y * z`` NPUs."""
    return build_mesh((x, y, z), alpha=alpha, bandwidth_gbps=bandwidth_gbps)
