"""Switch topology with degree-d unwinding (Sec. IV-G).

A switch offers all-to-all connectivity through a shared fabric, but
unregulated use causes contention.  TACOS unwinds an N-NPU switch into fixed
point-to-point links: with degree ``d``, each NPU ``i`` gets outgoing links to
``(i+1), (i+2), ..., (i+d) (mod N)``.  The per-link alpha stays the same while
beta is multiplied by ``d`` because the NPU's switch-port bandwidth is shared
among the ``d`` unwound links.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_switch"]


def build_switch(
    num_npus: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
    unwind_degree: int = 1,
) -> Topology:
    """Build an unwound switch topology.

    Parameters
    ----------
    num_npus:
        Number of NPUs attached to the switch.
    alpha:
        Switch traversal latency per message, in seconds.
    bandwidth_gbps:
        Per-NPU switch port bandwidth in GB/s (before unwinding).
    unwind_degree:
        The unwinding degree ``d``; must satisfy ``1 <= d <= num_npus - 1``.
        ``d=1`` produces a unidirectional ring suited to bandwidth-bound
        collectives, ``d=N-1`` a fully-connected graph suited to
        latency-bound collectives.
    """
    if num_npus < 2:
        raise TopologyError(f"a switch needs at least 2 NPUs, got {num_npus}")
    if not 1 <= unwind_degree <= num_npus - 1:
        raise TopologyError(
            f"unwind degree must be between 1 and {num_npus - 1}, got {unwind_degree}"
        )
    shared_bandwidth = bandwidth_gbps / unwind_degree
    topology = Topology(num_npus, name=f"Switch({num_npus},deg={unwind_degree})")
    for npu in range(num_npus):
        for offset in range(1, unwind_degree + 1):
            dest = (npu + offset) % num_npus
            topology.add_link(npu, dest, alpha=alpha, bandwidth_gbps=shared_bandwidth)
    return topology
