"""DragonFly topology builder.

The DragonFly in the paper's Fig. 15 is a ``groups x group_size`` arrangement
(4 x 5) that is both heterogeneous and asymmetric: NPUs within a group are
fully connected by fast local links, while groups are connected pairwise by a
single slower global link whose endpoints rotate across the NPUs of each
group (so some NPUs host global links and others do not — the asymmetry).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.defaults import DEFAULT_ALPHA
from repro.topology.topology import Topology

__all__ = ["build_dragonfly"]


def build_dragonfly(
    num_groups: int,
    group_size: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    local_bandwidth_gbps: float = 400.0,
    global_bandwidth_gbps: float = 200.0,
) -> Topology:
    """Build a DragonFly topology.

    Parameters
    ----------
    num_groups:
        Number of groups (the first dimension; 4 in the paper).
    group_size:
        NPUs per group (the second dimension; 5 in the paper).
    alpha:
        Latency of every link in seconds.
    local_bandwidth_gbps:
        Bandwidth of intra-group (local) links in GB/s.
    global_bandwidth_gbps:
        Bandwidth of inter-group (global) links in GB/s.
    """
    if num_groups < 2:
        raise TopologyError(f"DragonFly needs at least 2 groups, got {num_groups}")
    if group_size < 2:
        raise TopologyError(f"DragonFly groups need at least 2 NPUs, got {group_size}")
    num_npus = num_groups * group_size
    topology = Topology(num_npus, name=f"DragonFly({num_groups}x{group_size})")

    def npu(group: int, member: int) -> int:
        return group * group_size + member

    # Intra-group: fully connected with fast local links.
    for group in range(num_groups):
        for a in range(group_size):
            for b in range(group_size):
                if a != b:
                    topology.add_link(
                        npu(group, a),
                        npu(group, b),
                        alpha=alpha,
                        bandwidth_gbps=local_bandwidth_gbps,
                    )

    # Inter-group: one bidirectional global link per group pair.  The NPU that
    # hosts the global link rotates with the pair index so global connectivity
    # is spread (unevenly, hence asymmetric) across group members.
    pair_index = 0
    for group_a in range(num_groups):
        for group_b in range(group_a + 1, num_groups):
            member_a = pair_index % group_size
            member_b = (pair_index + 1) % group_size
            topology.add_link(
                npu(group_a, member_a),
                npu(group_b, member_b),
                alpha=alpha,
                bandwidth_gbps=global_bandwidth_gbps,
                bidirectional=True,
            )
            pair_index += 1
    return topology
