"""Torus (grid with wraparound) topology builders.

Tori are the paper's canonical *symmetric* multi-dimensional topologies
(Table IV): every NPU has identical degree, which is why Themis/BlueConnect
perform well on them.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.topology.builders.mesh import grid_coordinates, grid_index
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_torus", "build_torus_2d", "build_torus_3d"]


def build_torus(
    dims: Sequence[int],
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build an n-dimensional torus.

    Each dimension forms a bidirectional ring.  Dimensions of size 2 are
    connected with a single bidirectional link pair (the wraparound link would
    duplicate the direct link and is omitted).
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(f"torus dimensions must be positive, got {dims}")
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    if num_npus < 2:
        raise TopologyError("a torus needs at least 2 NPUs")
    shape = "x".join(str(d) for d in dims)
    topology = Topology(num_npus, name=f"Torus({shape})")
    for index in range(num_npus):
        coords = grid_coordinates(index, dims)
        for axis, dim in enumerate(dims):
            if dim == 1:
                continue
            neighbour = list(coords)
            neighbour[axis] = (coords[axis] + 1) % dim
            other = grid_index(neighbour, dims)
            if dim == 2 and coords[axis] == 1:
                # The wraparound from the second node duplicates the forward
                # link added when visiting the first node.
                continue
            topology.add_link(index, other, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
            topology.add_link(other, index, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology


def build_torus_2d(
    rows: int,
    cols: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a 2D torus of ``rows x cols`` NPUs."""
    return build_torus((cols, rows), alpha=alpha, bandwidth_gbps=bandwidth_gbps)


def build_torus_3d(
    x: int,
    y: int,
    z: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a 3D torus of ``x * y * z`` NPUs."""
    return build_torus((x, y, z), alpha=alpha, bandwidth_gbps=bandwidth_gbps)
