"""Topology builders for every network family evaluated in the paper."""

from repro.topology.builders.dgx1 import build_dgx1
from repro.topology.builders.dragonfly import build_dragonfly
from repro.topology.builders.fully_connected import build_fully_connected
from repro.topology.builders.hypercube import build_binary_hypercube, build_hypercube_3d
from repro.topology.builders.mesh import (
    build_mesh,
    build_mesh_2d,
    build_mesh_3d,
    grid_coordinates,
    grid_index,
)
from repro.topology.builders.multidim import (
    DimensionSpec,
    build_2d_switch,
    build_3d_rfs,
    build_multidim,
)
from repro.topology.builders.ring import build_ring
from repro.topology.builders.switch import build_switch
from repro.topology.builders.torus import build_torus, build_torus_2d, build_torus_3d

__all__ = [
    "DimensionSpec",
    "build_2d_switch",
    "build_3d_rfs",
    "build_binary_hypercube",
    "build_dgx1",
    "build_dragonfly",
    "build_fully_connected",
    "build_hypercube_3d",
    "build_mesh",
    "build_mesh_2d",
    "build_mesh_3d",
    "build_multidim",
    "build_ring",
    "build_switch",
    "build_torus",
    "build_torus_2d",
    "build_torus_3d",
    "grid_coordinates",
    "grid_index",
]
