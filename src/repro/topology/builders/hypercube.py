"""Hypercube topology builders.

The paper uses "3D Hypercube" for a three-dimensional grid without wraparound
(e.g. "3D Hypercube (5x5x5)" in Fig. 18), which is an asymmetric topology —
equivalent to a 3D mesh.  We expose that meaning as
:func:`build_hypercube_3d`, and additionally provide the classical binary
n-cube (:func:`build_binary_hypercube`) that algorithms such as Recursive
Halving-Doubling prefer.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.builders.mesh import build_mesh
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_hypercube_3d", "build_binary_hypercube"]


def build_hypercube_3d(
    x: int,
    y: int,
    z: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build the paper's "3D Hypercube": a 3D grid without wraparound.

    This is structurally a 3D mesh; the separate builder exists so experiment
    code reads like the paper ("3D Hypercube (5x5x5)").
    """
    topology = build_mesh((x, y, z), alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    topology.name = f"Hypercube3D({x}x{y}x{z})"
    return topology


def build_binary_hypercube(
    dimension: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a classical binary hypercube with ``2 ** dimension`` NPUs.

    NPUs ``a`` and ``b`` are connected (bidirectionally) when their indices
    differ in exactly one bit.  This is the preferred topology of Recursive
    Halving-Doubling.
    """
    if dimension < 1:
        raise TopologyError(f"binary hypercube dimension must be at least 1, got {dimension}")
    num_npus = 1 << dimension
    topology = Topology(num_npus, name=f"BinaryHypercube({dimension})")
    for npu in range(num_npus):
        for bit in range(dimension):
            other = npu ^ (1 << bit)
            if other > npu:
                topology.add_link(npu, other, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
                topology.add_link(other, npu, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology
