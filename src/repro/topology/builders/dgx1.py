"""DGX-1-like 8-GPU topology used for the C-Cube comparison (Fig. 17b).

The NVIDIA DGX-1 (V100) connects 8 GPUs with NVLink in a hybrid cube-mesh
where every GPU has 6 NVLink ports.  We reproduce that degree-6 structure as:

* two fully-connected quads (GPUs 0-3 and 4-7): 3 links per GPU, and
* three cross-quad links per GPU: ``i <-> i+4``, ``i <-> ((i+1) % 4) + 4``
  and ``i <-> ((i+3) % 4) + 4``.

The exact NVLink wiring of the product differs in which pairs receive doubled
links, but the properties the C-Cube comparison relies on — 6 usable links per
GPU, two disjoint binary trees embeddable using 4 of them — are preserved.

With ``heterogeneous=True`` the builder mirrors the product's doubled NVLinks:
the adjacent intra-quad pairs (0-1, 2-3, ...) and the straight cross-quad
links (``i <-> i+4``) carry twice the bandwidth, giving the two-tier link-cost
structure that exercises the synthesizer's lower-cost-link prioritization.
"""

from __future__ import annotations

from repro.topology.defaults import DEFAULT_ALPHA
from repro.topology.topology import Topology

__all__ = ["build_dgx1"]


def build_dgx1(
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = 25.0,
    heterogeneous: bool = False,
) -> Topology:
    """Build the 8-GPU DGX-1-like topology (degree 6 per GPU)."""
    name = "DGX-1(2-tier)" if heterogeneous else "DGX-1"
    topology = Topology(8, name=name)
    added = set()

    def connect(a: int, b: int, *, doubled: bool = False) -> None:
        if (a, b) in added or (b, a) in added:
            return
        scale = 2.0 if (doubled and heterogeneous) else 1.0
        topology.add_link(
            a, b, alpha=alpha, bandwidth_gbps=bandwidth_gbps * scale, bidirectional=True
        )
        added.add((a, b))

    # Two fully-connected quads; the adjacent pairs get the doubled NVLinks.
    for base in (0, 4):
        for a in range(base, base + 4):
            for b in range(a + 1, base + 4):
                connect(a, b, doubled=(b == a + 1 and a % 2 == 0))

    # Cross-quad links giving every GPU three inter-quad neighbours; the
    # straight ``i <-> i+4`` links are the doubled ones.
    for i in range(4):
        connect(i, i + 4, doubled=True)
        connect(i, ((i + 1) % 4) + 4)
        connect(i, ((i + 3) % 4) + 4)
    return topology
