"""Fully-connected (all-to-all) topology builder."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_fully_connected"]


def build_fully_connected(
    num_npus: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
) -> Topology:
    """Build a fully-connected topology where every NPU pair has a direct link.

    Parameters
    ----------
    num_npus:
        Number of NPUs; must be at least 2.
    alpha:
        Per-link latency in seconds.
    bandwidth_gbps:
        Per-link bandwidth in GB/s.
    """
    if num_npus < 2:
        raise TopologyError(f"a fully-connected topology needs at least 2 NPUs, got {num_npus}")
    topology = Topology(num_npus, name=f"FullyConnected({num_npus})")
    for src in range(num_npus):
        for dest in range(num_npus):
            if src != dest:
                topology.add_link(src, dest, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology
