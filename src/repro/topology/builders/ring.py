"""Ring topology builders (unidirectional and bidirectional)."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.defaults import DEFAULT_ALPHA, DEFAULT_BANDWIDTH_GBPS
from repro.topology.topology import Topology

__all__ = ["build_ring"]


def build_ring(
    num_npus: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
    bidirectional: bool = True,
) -> Topology:
    """Build a ring of ``num_npus`` NPUs.

    Parameters
    ----------
    num_npus:
        Number of NPUs; must be at least 2.
    alpha:
        Per-link latency in seconds.
    bandwidth_gbps:
        Per-link bandwidth in GB/s.
    bidirectional:
        When True (the paper's default, footnote 3) each neighbouring pair is
        connected by two opposite-direction links; otherwise only the
        ``i -> i+1`` direction exists.

    Returns
    -------
    Topology
        The ring topology, named ``Ring(n)`` or ``UniRing(n)``.
    """
    if num_npus < 2:
        raise TopologyError(f"a ring needs at least 2 NPUs, got {num_npus}")
    direction = "Ring" if bidirectional else "UniRing"
    topology = Topology(num_npus, name=f"{direction}({num_npus})")
    for npu in range(num_npus):
        nxt = (npu + 1) % num_npus
        topology.add_link(npu, nxt, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
        if bidirectional:
            topology.add_link(nxt, npu, alpha=alpha, bandwidth_gbps=bandwidth_gbps)
    return topology
