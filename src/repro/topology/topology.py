"""Directed network topology with alpha-beta link costs.

A :class:`Topology` is the spatial half of the time-expanded network used by
TACOS.  It is a directed multigraph restricted to at most one link per
``(source, dest)`` pair; heterogeneity is expressed through per-link alpha and
beta values, and asymmetry through the absence of links or through NPUs with
different degrees.
"""

from __future__ import annotations

import heapq
import math
import struct
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.topology.link import Link, bandwidth_to_beta

__all__ = ["LinkArrays", "Topology"]

#: Magic prefix of the :meth:`Topology.to_bytes` wire format.
_BYTES_MAGIC = b"TACOSTP1"


class LinkArrays(NamedTuple):
    """Flat array view of a topology's links, indexed by integer link id.

    Link ids number the links ``0 .. num_links - 1`` in topology insertion
    order — the numbering shared by the synthesis TEN
    (:class:`repro.ten.network.TimeExpandedNetwork`) and the array-backed
    simulator (:class:`repro.simulator.engine.CongestionAwareSimulator`).
    All members are cached on the topology and shared; treat them as
    read-only.
    """

    id_of: Dict[Tuple[int, int], int]  #: ``(source, dest)`` key -> link id
    sources: List[int]  #: per-link source NPU
    dests: List[int]  #: per-link destination NPU
    alphas: List[float]  #: per-link latency (seconds)
    betas: List[float]  #: per-link serialization delay (seconds/byte)
    in_ids: List[List[int]]  #: per-NPU incoming link ids, in-neighbour order
    out_ids: List[List[int]]  #: per-NPU outgoing link ids, out-neighbour order


class Topology:
    """A directed network of NPUs connected by alpha-beta links.

    Parameters
    ----------
    num_npus:
        Number of NPUs (endpoints).  NPUs are identified by integers
        ``0 .. num_npus - 1``.
    name:
        Optional human-readable name (e.g. ``"Ring(8)"``), used in reports.
    """

    def __init__(self, num_npus: int, name: str = "") -> None:
        if num_npus <= 0:
            raise TopologyError(f"topology needs at least one NPU, got {num_npus}")
        self._num_npus = int(num_npus)
        self.name = name or f"Topology({num_npus})"
        self._links: Dict[Tuple[int, int], Link] = {}
        self._out: Dict[int, List[int]] = {npu: [] for npu in range(num_npus)}
        self._in: Dict[int, List[int]] = {npu: [] for npu in range(num_npus)}
        #: Derived-structure cache (adjacency, hop distances, reachability
        #: regions, reversed view); invalidated whenever a link is added.
        self._derived_cache: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(
        self,
        source: int,
        dest: int,
        *,
        alpha: float,
        beta: Optional[float] = None,
        bandwidth_gbps: Optional[float] = None,
        bidirectional: bool = False,
    ) -> None:
        """Add a directed link (and optionally its reverse).

        Exactly one of ``beta`` (seconds per byte) or ``bandwidth_gbps`` must
        be provided.  Adding a link that already exists raises
        :class:`TopologyError` to catch accidental double-definitions in
        topology builders.
        """
        self._check_npu(source)
        self._check_npu(dest)
        if (beta is None) == (bandwidth_gbps is None):
            raise TopologyError("provide exactly one of beta or bandwidth_gbps")
        if beta is None:
            beta = bandwidth_to_beta(bandwidth_gbps)
        key = (source, dest)
        if key in self._links:
            raise TopologyError(f"link {source}->{dest} already exists in {self.name}")
        link = Link(source=source, dest=dest, alpha=alpha, beta=beta)
        self._links[key] = link
        self._out[source].append(dest)
        self._in[dest].append(source)
        self._derived_cache.clear()
        if bidirectional:
            self.add_link(dest, source, alpha=alpha, beta=beta, bidirectional=False)

    def _check_npu(self, npu: int) -> None:
        if not 0 <= npu < self._num_npus:
            raise TopologyError(f"NPU {npu} out of range for {self.name} with {self._num_npus} NPUs")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_npus(self) -> int:
        """Number of NPUs in the topology."""
        return self._num_npus

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    @property
    def npus(self) -> range:
        """Iterable over all NPU indices."""
        return range(self._num_npus)

    def links(self) -> Iterator[Link]:
        """Iterate over all directed links."""
        return iter(self._links.values())

    def link_keys(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(source, dest)`` link keys."""
        return iter(self._links.keys())

    def has_link(self, source: int, dest: int) -> bool:
        """Whether a directed link ``source -> dest`` exists."""
        return (source, dest) in self._links

    def link(self, source: int, dest: int) -> Link:
        """Return the link ``source -> dest`` or raise :class:`TopologyError`."""
        try:
            return self._links[(source, dest)]
        except KeyError:
            raise TopologyError(f"no link {source}->{dest} in {self.name}") from None

    def out_neighbors(self, npu: int) -> Sequence[int]:
        """NPUs reachable from ``npu`` over a single link."""
        self._check_npu(npu)
        return tuple(self._out[npu])

    def in_neighbors(self, npu: int) -> Sequence[int]:
        """NPUs with a direct link into ``npu``."""
        self._check_npu(npu)
        return tuple(self._in[npu])

    def out_degree(self, npu: int) -> int:
        """Number of outgoing links of ``npu``."""
        return len(self.out_neighbors(npu))

    def in_degree(self, npu: int) -> int:
        """Number of incoming links of ``npu``."""
        return len(self.in_neighbors(npu))

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every NPU can reach every other NPU over directed links."""
        graph = self.to_networkx()
        return nx.is_strongly_connected(graph) if self._num_npus > 1 else True

    def is_homogeneous(self) -> bool:
        """Whether every link has identical alpha and beta (Sec. I, footnote 2)."""
        links = list(self._links.values())
        if not links:
            return True
        first = links[0]
        return all(
            math.isclose(link.alpha, first.alpha) and math.isclose(link.beta, first.beta)
            for link in links
        )

    def is_symmetric(self) -> bool:
        """Whether every NPU has identical in- and out-degree profiles.

        This is the degree-regularity notion of symmetry used informally by
        the paper (NPUs at the centre vs. the edge of a mesh have different
        degrees, making the mesh asymmetric).
        """
        degrees = {(self.out_degree(npu), self.in_degree(npu)) for npu in self.npus}
        return len(degrees) <= 1

    def npu_egress_bandwidth(self, npu: int) -> float:
        """Aggregate outgoing bandwidth of ``npu`` in bytes per second.

        A pure-latency link (``beta == 0``) contributes infinite bandwidth.
        """
        return sum(
            self._links[(npu, dest)].bytes_per_second for dest in self.out_neighbors(npu)
        )

    def npu_ingress_bandwidth(self, npu: int) -> float:
        """Aggregate incoming bandwidth of ``npu`` in bytes per second."""
        return sum(
            self._links[(src, npu)].bytes_per_second for src in self.in_neighbors(npu)
        )

    def min_npu_bandwidth(self) -> float:
        """Bottleneck NPU bandwidth (bytes/s), used by the ideal bound (Sec. V-A).

        The bottleneck is the smallest of all per-NPU ingress and egress
        aggregate bandwidths; injection and ejection both constrain an
        All-Reduce.
        """
        values = []
        for npu in self.npus:
            values.append(self.npu_egress_bandwidth(npu))
            values.append(self.npu_ingress_bandwidth(npu))
        if not values or min(values) == 0:
            raise TopologyError(f"{self.name} has an NPU with no links")
        return min(values)

    def diameter_hops(self) -> int:
        """Longest shortest-path length in hops between any NPU pair."""
        graph = self.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        diameter = 0
        for src in self.npus:
            for dest in self.npus:
                if src == dest:
                    continue
                if dest not in lengths.get(src, {}):
                    raise TopologyError(f"{self.name} is not strongly connected")
                diameter = max(diameter, lengths[src][dest])
        return diameter

    def diameter_latency(self) -> float:
        """Minimum latency (alpha-only) for the farthest NPU pair to communicate.

        This is the alpha term of the theoretical ideal collective time in
        Sec. V-A: the time for the two most distant NPUs to exchange a
        zero-sized message along their cheapest path.
        """
        worst = 0.0
        for src in self.npus:
            distances, _ = self.shortest_path_tree(src, 0.0)
            for dest in self.npus:
                if src == dest:
                    continue
                if math.isinf(distances[dest]):
                    raise TopologyError(f"{self.name} is not strongly connected")
                worst = max(worst, distances[dest])
        return worst

    def total_link_bandwidth(self) -> float:
        """Sum of all link bandwidths in bytes per second."""
        return sum(link.bytes_per_second for link in self._links.values())

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def shortest_path_tree(
        self, source: int, message_size: float = 0.0
    ) -> Tuple[List[float], List[int]]:
        """Single-source shortest-path tree for ``message_size``-byte hops.

        Returns ``(distances, parent_links)``: the cheapest transmission-cost
        distance from ``source`` to every NPU, and for each NPU the link id
        (see :meth:`link_arrays`) of the final hop on that cheapest path
        (``-1`` for the source itself and for unreachable NPUs).

        One tree answers every ``(source, *)`` routing query, replacing the
        per-destination Dijkstra the simulator used to run; trees are cached
        per ``(source, message_size)`` and invalidated when a link is added.
        Ties between equal-cost paths break identically to the historical
        per-destination search (heap pops ordered by ``(distance, node)``,
        strict-improvement relaxation in link insertion order), so cached
        trees yield byte-identical routes.
        """
        self._check_npu(source)
        if message_size < 0:
            raise TopologyError(f"message size must be non-negative, got {message_size}")
        key = ("sp_tree", source, float(message_size))
        return self._derived(
            key, lambda: self._compute_shortest_path_tree(source, float(message_size))
        )

    def _compute_shortest_path_tree(
        self, source: int, message_size: float
    ) -> Tuple[List[float], List[int]]:
        arrays = self.link_arrays()
        out_ids = arrays.out_ids
        dests = arrays.dests
        # Per-link hop cost, grouped exactly like Link.cost (alpha + beta *
        # size) before being added to the running distance.  The grouping is
        # load-bearing: `dist + alpha + beta * size` associates the other way
        # and can land one ulp away, silently flipping which of two
        # equal-cost routes wins a tie against the historical per-destination
        # Dijkstra.
        costs = [
            alpha + beta * message_size
            for alpha, beta in zip(arrays.alphas, arrays.betas)
        ]
        distances = [math.inf] * self._num_npus
        parent_links = [-1] * self._num_npus
        distances[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            dist, node = pop(heap)
            if dist > distances[node]:
                continue
            for link_id in out_ids[node]:
                candidate = dist + costs[link_id]
                dest = dests[link_id]
                if candidate < distances[dest]:
                    distances[dest] = candidate
                    parent_links[dest] = link_id
                    push(heap, (candidate, dest))
        return distances, parent_links

    def shortest_path(self, source: int, dest: int, message_size: float = 0.0) -> List[int]:
        """Cheapest path (list of NPU indices) from ``source`` to ``dest``.

        The path cost of each hop is the alpha-beta transmission time of
        ``message_size`` bytes, so large messages prefer high-bandwidth links
        while small messages prefer low-latency links.  Resolved through the
        cached :meth:`shortest_path_tree` for ``source``.
        """
        self._check_npu(source)
        self._check_npu(dest)
        if source == dest:
            return [source]
        distances, parent_links = self.shortest_path_tree(source, message_size)
        if math.isinf(distances[dest]):
            raise TopologyError(f"no path from {source} to {dest} in {self.name}")
        sources = self.link_arrays().sources
        path = [dest]
        node = dest
        while node != source:
            node = sources[parent_links[node]]
            path.append(node)
        path.reverse()
        return path

    def shortest_path_links(
        self, source: int, dest: int, message_size: float = 0.0
    ) -> List[int]:
        """Cheapest path from ``source`` to ``dest`` as a list of link ids.

        The hop sequence the array-backed simulator consumes directly; same
        tree (and therefore the same path) as :meth:`shortest_path`.
        """
        self._check_npu(source)
        self._check_npu(dest)
        if source == dest:
            return []
        distances, parent_links = self.shortest_path_tree(source, message_size)
        if math.isinf(distances[dest]):
            raise TopologyError(f"no path from {source} to {dest} in {self.name}")
        sources = self.link_arrays().sources
        hops = []
        node = dest
        while node != source:
            link_id = parent_links[node]
            hops.append(link_id)
            node = sources[link_id]
        hops.reverse()
        return hops

    def all_shortest_paths_from(self, source: int, message_size: float = 0.0) -> Dict[int, List[int]]:
        """Cheapest paths from ``source`` to every other NPU.

        Resolved from one cached shortest-path tree rather than one Dijkstra
        run per destination.
        """
        return {dest: self.shortest_path(source, dest, message_size) for dest in self.npus if dest != source}

    # ------------------------------------------------------------------
    # Cached derived structures (synthesis hot path)
    # ------------------------------------------------------------------
    def _derived(self, key: object, builder):
        value = self._derived_cache.get(key)
        if value is None:
            value = builder()
            self._derived_cache[key] = value
        return value

    def out_adjacency(self) -> List[List[int]]:
        """Per-NPU outgoing neighbour lists, in link-insertion order.

        The returned list-of-lists is cached and shared; treat it as
        read-only.  It avoids the per-call tuple construction of
        :meth:`out_neighbors` on the synthesis hot path.
        """
        return self._derived(
            "out_adjacency", lambda: [list(self._out[npu]) for npu in self.npus]
        )

    def in_adjacency(self) -> List[List[int]]:
        """Per-NPU incoming neighbour lists, in link-insertion order (read-only)."""
        return self._derived(
            "in_adjacency", lambda: [list(self._in[npu]) for npu in self.npus]
        )

    def link_arrays(self) -> LinkArrays:
        """Flat link-id arrays + CSR-style adjacency, cached per topology.

        See :class:`LinkArrays`.  Shared by the synthesis TEN and the
        array-backed simulator so both layers agree on link numbering.
        """
        return self._derived("link_arrays", self._compute_link_arrays)

    def _compute_link_arrays(self) -> LinkArrays:
        id_of: Dict[Tuple[int, int], int] = {}
        sources: List[int] = []
        dests: List[int] = []
        alphas: List[float] = []
        betas: List[float] = []
        for link in self._links.values():
            id_of[link.key] = len(sources)
            sources.append(link.source)
            dests.append(link.dest)
            alphas.append(link.alpha)
            betas.append(link.beta)
        in_ids = [
            [id_of[(source, dest)] for source in self._in[dest]] for dest in self.npus
        ]
        out_ids = [
            [id_of[(source, dest)] for dest in self._out[source]] for source in self.npus
        ]
        return LinkArrays(
            id_of=id_of,
            sources=sources,
            dests=dests,
            alphas=alphas,
            betas=betas,
            in_ids=in_ids,
            out_ids=out_ids,
        )

    def link_id_matrix(self):
        """Dense ``source * num_npus + dest -> link id`` lookup (``-1`` = no link).

        A flat ``numpy`` int array resolving whole columns of ``(source,
        dest)`` pairs against :meth:`link_arrays` ids in one gather — the
        vectorized verification and adapter layers use it instead of
        per-transfer dict lookups.  Cached per topology; treat as read-only.
        """

        def build():
            import numpy as np

            size = self._num_npus
            matrix = np.full(size * size, -1, dtype=np.int64)
            for (source, dest), link_id in self.link_arrays().id_of.items():
                matrix[source * size + dest] = link_id
            return matrix

        return self._derived("link_id_matrix", build)

    def hop_distances(self) -> List[List[int]]:
        """All-pairs hop distances via per-source BFS, cached per topology.

        ``hop_distances()[a][b]`` is the number of links on a shortest
        directed path from ``a`` to ``b``; unreachable pairs get the sentinel
        ``num_npus + 1``.  Used by the matching algorithm's forwarding pass to
        push chunks strictly closer to their destinations.
        """
        return self._derived("hop_distances", self._compute_hop_distances)

    def _compute_hop_distances(self) -> List[List[int]]:
        from collections import deque

        size = self._num_npus
        unreachable = size + 1
        out = self.out_adjacency()
        distances = [[unreachable] * size for _ in range(size)]
        for source in range(size):
            row = distances[source]
            row[source] = 0
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for neighbour in out[node]:
                    if row[neighbour] == unreachable:
                        row[neighbour] = row[node] + 1
                        queue.append(neighbour)
        return distances

    def cheaper_reachability_regions(self, chunk_size: float) -> Dict[float, List[frozenset]]:
        """Per link-cost tier, the NPUs that can reach each destination over cheaper links only.

        Returns ``{cost: regions}`` where ``regions[dest]`` is a frozenset of
        NPUs from which ``dest`` is reachable using only links whose one-chunk
        cost is strictly below ``cost``.  Used by the matching algorithm's
        lower-cost-link prioritization on heterogeneous topologies (Sec. IV-F).
        Cached per ``(topology, chunk_size)``.
        """
        return self._derived(
            ("cheap_regions", float(chunk_size)),
            lambda: self._compute_cheaper_regions(float(chunk_size)),
        )

    def _compute_cheaper_regions(self, chunk_size: float) -> Dict[float, List[frozenset]]:
        from collections import deque

        costs = sorted({link.cost(chunk_size) for link in self._links.values()})
        regions: Dict[float, List[frozenset]] = {}
        for cost in costs[1:]:  # the cheapest tier has no strictly cheaper links
            cheaper_in: List[List[int]] = [[] for _ in range(self._num_npus)]
            for link in self._links.values():
                if link.cost(chunk_size) < cost - 1e-15:
                    cheaper_in[link.dest].append(link.source)
            per_dest = []
            for dest in self.npus:
                reachable = {dest}
                queue = deque([dest])
                while queue:
                    node = queue.popleft()
                    for predecessor in cheaper_in[node]:
                        if predecessor not in reachable:
                            reachable.add(predecessor)
                            queue.append(predecessor)
                reachable.discard(dest)
                per_dest.append(frozenset(reachable))
            regions[cost] = per_dest
        return regions

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "Topology":
        """Return a copy of the topology with every link direction flipped.

        Used for synthesizing reduction collectives (Fig. 11): a Reduce-Scatter
        is an All-Gather over the reversed topology played backwards in time.
        The reversed view is cached (and therefore shared) so repeated
        All-Reduce syntheses on the same topology reuse its derived structures;
        treat it as read-only.
        """
        return self._derived("reversed", self._compute_reversed)

    def _compute_reversed(self) -> "Topology":
        rev = Topology(self._num_npus, name=f"{self.name}.reversed")
        for link in self._links.values():
            rev.add_link(link.dest, link.source, alpha=link.alpha, beta=link.beta)
        return rev

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Return a deep copy of the topology."""
        duplicate = Topology(self._num_npus, name=name or self.name)
        for link in self._links.values():
            duplicate.add_link(link.source, link.dest, alpha=link.alpha, beta=link.beta)
        return duplicate

    def to_bytes(self) -> bytes:
        """Serialize to a compact validated binary blob (LE64 link columns).

        Layout: an 8-byte magic, ``<Q`` NPU count / link count / name length,
        the UTF-8 name, then four raw columns in link-id (insertion) order —
        sources and dests as ``<i8``, alphas and betas as ``<f8`` (bit-exact,
        so costs round-trip to the float, including ``beta == 0``
        pure-latency links).  This is the broadcast-plane wire format
        (:mod:`repro.api.broadcast`): the same topology always serializes to
        the same bytes, so the blob's content hash is a topology identity.
        """
        arrays = self.link_arrays()
        name_bytes = self.name.encode("utf-8")
        parts = [
            _BYTES_MAGIC,
            struct.pack("<QQQ", self._num_npus, self.num_links, len(name_bytes)),
            name_bytes,
            np.ascontiguousarray(arrays.sources, dtype="<i8").tobytes(),
            np.ascontiguousarray(arrays.dests, dtype="<i8").tobytes(),
            np.ascontiguousarray(arrays.alphas, dtype="<f8").tobytes(),
            np.ascontiguousarray(arrays.betas, dtype="<f8").tobytes(),
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Topology":
        """Rebuild a topology serialized by :meth:`to_bytes`, validating loudly.

        The magic, the exact byte length, and every link (NPU ranges,
        duplicate links, alpha/beta domain checks via
        :meth:`add_link`/:class:`~repro.topology.link.Link`) are verified;
        corrupt input raises :class:`~repro.errors.TopologyError` rather than
        producing a silently wrong network.  Link ids (insertion order) and
        the name are preserved, so ``from_bytes(t.to_bytes())`` equals ``t``
        and re-serializes to identical bytes.
        """
        header = len(_BYTES_MAGIC) + 24
        if len(data) < header or data[: len(_BYTES_MAGIC)] != _BYTES_MAGIC:
            raise TopologyError("not a serialized Topology (bad magic)")
        num_npus, num_links, name_length = struct.unpack_from(
            "<QQQ", data, len(_BYTES_MAGIC)
        )
        expected = header + name_length + num_links * 32
        if len(data) != expected:
            raise TopologyError(
                f"serialized Topology length mismatch: expected {expected} bytes, got {len(data)}"
            )
        name = data[header : header + name_length].decode("utf-8")
        offset = header + name_length
        columns = []
        for dtype in ("<i8", "<i8", "<f8", "<f8"):
            column = np.frombuffer(data, dtype=dtype, count=num_links, offset=offset)
            columns.append(column)
            offset += num_links * 8
        sources, dests, alphas, betas = columns
        topology = cls(num_npus, name=name)
        for index in range(num_links):
            topology.add_link(
                int(sources[index]),
                int(dests[index]),
                alpha=float(alphas[index]),
                beta=float(betas[index]),
            )
        return topology

    def to_networkx(self) -> "nx.DiGraph":
        """Export the topology as a :class:`networkx.DiGraph`.

        Link attributes ``alpha`` and ``beta`` are preserved as edge data so
        analysis code can reuse networkx graph algorithms.
        """
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self.npus)
        for link in self._links.values():
            graph.add_edge(link.source, link.dest, alpha=link.alpha, beta=link.beta)
        return graph

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, num_npus={self._num_npus}, num_links={self.num_links})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._num_npus == other._num_npus and self._links == other._links

    def __hash__(self) -> int:  # pragma: no cover - topologies are rarely hashed
        return hash((self._num_npus, tuple(sorted(self._links))))
