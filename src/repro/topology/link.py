"""Network link model based on the alpha-beta cost model.

Every directed link in a topology carries two parameters following the
Hockney alpha-beta model used throughout the paper (Sec. IV-F):

* ``alpha`` -- the fixed latency of one transmission, in seconds.
* ``beta`` -- the serialization delay per byte, in seconds per byte
  (i.e. the reciprocal of the link bandwidth).

The transmission cost of a message of ``size`` bytes is ``alpha + beta * size``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TopologyError

__all__ = ["Link", "bandwidth_to_beta", "beta_to_bandwidth", "GIGABYTE"]

#: Number of bytes in one gigabyte, used when converting GB/s link speeds.
GIGABYTE = 1e9


def bandwidth_to_beta(bandwidth_gbps: float) -> float:
    """Convert a link bandwidth in GB/s into a beta cost in seconds per byte.

    Parameters
    ----------
    bandwidth_gbps:
        Link bandwidth expressed in gigabytes per second (the unit the paper
        uses, e.g. ``1/beta = 50 GB/s``).

    Returns
    -------
    float
        Serialization delay per byte in seconds.
    """
    if bandwidth_gbps <= 0:
        raise TopologyError(f"bandwidth must be positive, got {bandwidth_gbps}")
    return 1.0 / (bandwidth_gbps * GIGABYTE)


def beta_to_bandwidth(beta: float) -> float:
    """Convert a beta cost (seconds per byte) back into GB/s.

    A pure-latency link (``beta == 0``) has infinite bandwidth.
    """
    if beta < 0:
        raise TopologyError(f"beta must be non-negative, got {beta}")
    if beta == 0:
        return float("inf")
    return 1.0 / (beta * GIGABYTE)


@dataclass(frozen=True)
class Link:
    """A directed network link between two NPUs.

    Attributes
    ----------
    source:
        Index of the sending NPU.
    dest:
        Index of the receiving NPU.
    alpha:
        Link latency in seconds.
    beta:
        Serialization delay in seconds per byte (reciprocal of bandwidth).
        ``beta == 0`` models a pure-latency link (e.g. a control channel):
        transmissions occupy it for zero time and only pay ``alpha``
        (which must then be positive — a link cannot be free in both terms).
    """

    source: int
    dest: int
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise TopologyError(f"self-loop link on NPU {self.source} is not allowed")
        if self.alpha < 0:
            raise TopologyError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta < 0:
            raise TopologyError(f"beta must be non-negative, got {self.beta}")
        if self.beta == 0 and self.alpha == 0:
            # A zero-cost link would create zero-length TEN spans, on which
            # the flat and reference synthesis engines legitimately diverge
            # (a transfer completing *at* the current time is visible to one
            # scan order but not the other); a pure-latency link must carry
            # real latency.
            raise TopologyError("link must have positive cost: alpha and beta cannot both be 0")

    @property
    def key(self) -> tuple[int, int]:
        """The ``(source, dest)`` pair identifying this link in a topology."""
        return (self.source, self.dest)

    @property
    def bandwidth_gbps(self) -> float:
        """Link bandwidth in GB/s (infinite for a pure-latency link)."""
        return beta_to_bandwidth(self.beta)

    @property
    def bytes_per_second(self) -> float:
        """Link bandwidth in bytes per second (infinite for ``beta == 0``)."""
        if self.beta == 0:
            return float("inf")
        return 1.0 / self.beta

    def cost(self, message_size: float) -> float:
        """Transmission time in seconds for a message of ``message_size`` bytes."""
        if message_size < 0:
            raise TopologyError(f"message size must be non-negative, got {message_size}")
        return self.alpha + self.beta * message_size

    def reversed(self) -> "Link":
        """Return the same link with source and destination swapped."""
        return replace(self, source=self.dest, dest=self.source)

    def scaled_bandwidth(self, factor: float) -> "Link":
        """Return a copy of this link whose bandwidth is divided by ``factor``.

        Used by switch unwinding (Sec. IV-G), where a degree-``d`` unwinding
        keeps alpha constant but multiplies beta by ``d`` because the physical
        switch port bandwidth is shared.
        """
        if factor <= 0:
            raise TopologyError(f"bandwidth sharing factor must be positive, got {factor}")
        return replace(self, beta=self.beta * factor)
