"""Helpers for splitting collectives into chunks.

The paper improves network utilization by decomposing a collective into
multiple smaller chunks that can be routed concurrently (Sec. II-A).  This
module provides small utilities shared by the synthesizer, the baselines, and
the experiments for reasoning about chunk counts and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.pattern import CollectivePattern
from repro.errors import CollectiveError

__all__ = ["ChunkPlan", "plan_chunks"]


@dataclass(frozen=True)
class ChunkPlan:
    """Concrete chunking of a collective of a given size.

    Attributes
    ----------
    pattern:
        The collective pattern (already constructed with its chunk count).
    collective_size:
        Per-NPU buffer size in bytes.
    chunk_size:
        Size of each chunk in bytes.
    num_chunks:
        Total number of chunks flowing through the network.
    """

    pattern: CollectivePattern
    collective_size: float
    chunk_size: float
    num_chunks: int

    @property
    def total_bytes_moved_lower_bound(self) -> float:
        """Minimum bytes any algorithm must move (one delivery per missing chunk)."""
        return self.pattern.total_transfers_lower_bound() * self.chunk_size


def plan_chunks(pattern: CollectivePattern, collective_size: float) -> ChunkPlan:
    """Build a :class:`ChunkPlan` for ``pattern`` at ``collective_size`` bytes."""
    if collective_size <= 0:
        raise CollectiveError(f"collective size must be positive, got {collective_size}")
    chunk_size = pattern.chunk_size(collective_size)
    return ChunkPlan(
        pattern=pattern,
        collective_size=float(collective_size),
        chunk_size=chunk_size,
        num_chunks=pattern.num_chunks,
    )
