"""Gather, Scatter, and All-to-All collective patterns.

These patterns round out the collective library beyond what the paper's
evaluation uses directly; they are expressible in exactly the same
pre/postcondition formulation and are synthesized by the same machinery.
"""

from __future__ import annotations

from repro.collectives.pattern import ChunkOwnership, CollectivePattern
from repro.errors import CollectiveError

__all__ = ["Gather", "Scatter", "AllToAll"]


class Gather(CollectivePattern):
    """Gather: every NPU's chunk(s) are collected at the root NPU."""

    name = "Gather"
    requires_reduction = False

    def __init__(self, num_npus: int, chunks_per_npu: int = 1, root: int = 0) -> None:
        super().__init__(num_npus, chunks_per_npu)
        if not 0 <= root < num_npus:
            raise CollectiveError(f"gather root {root} out of range for {num_npus} NPUs")
        self.root = int(root)

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        return {npu: self.owned_chunks(npu) for npu in range(self.num_npus)}

    def postcondition(self) -> ChunkOwnership:
        post = {npu: self.owned_chunks(npu) for npu in range(self.num_npus)}
        post[self.root] = self.all_chunks()
        return post

    def chunk_size(self, collective_size: float) -> float:
        """``collective_size`` is the fully gathered buffer at the root."""
        return collective_size / (self.num_npus * self.chunks_per_npu)

    def __eq__(self, other: object) -> bool:
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        return self.root == other.root  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_npus, self.chunks_per_npu, self.root))


class Scatter(CollectivePattern):
    """Scatter: the root distributes a distinct chunk (set) to every NPU."""

    name = "Scatter"
    requires_reduction = False

    def __init__(self, num_npus: int, chunks_per_npu: int = 1, root: int = 0) -> None:
        super().__init__(num_npus, chunks_per_npu)
        if not 0 <= root < num_npus:
            raise CollectiveError(f"scatter root {root} out of range for {num_npus} NPUs")
        self.root = int(root)

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        pre = {npu: frozenset() for npu in range(self.num_npus)}
        pre[self.root] = self.all_chunks()
        return pre

    def postcondition(self) -> ChunkOwnership:
        post = {npu: self.owned_chunks(npu) for npu in range(self.num_npus)}
        post[self.root] = post[self.root] | self.owned_chunks(self.root) | self.all_chunks()
        # The root already holds everything; its postcondition only requires
        # its own shard, but keeping the full set is equivalent because the
        # precondition already satisfies it.
        post[self.root] = self.all_chunks()
        return post

    def chunk_size(self, collective_size: float) -> float:
        """``collective_size`` is the root's full buffer before scattering."""
        return collective_size / (self.num_npus * self.chunks_per_npu)

    def __eq__(self, other: object) -> bool:
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        return self.root == other.root  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_npus, self.chunks_per_npu, self.root))


class AllToAll(CollectivePattern):
    """All-to-All: every NPU sends a distinct chunk to every other NPU.

    Chunk ids are laid out as ``source * num_npus + dest`` (times
    ``chunks_per_npu`` sub-chunks), so NPU ``i`` starts with the chunks whose
    source is ``i`` and must end with the chunks whose destination is ``i``.
    """

    name = "AllToAll"
    requires_reduction = False

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.num_npus * self.chunks_per_npu

    def _chunk_id(self, source: int, dest: int, sub: int) -> int:
        return (source * self.num_npus + dest) * self.chunks_per_npu + sub

    def precondition(self) -> ChunkOwnership:
        pre = {}
        for source in range(self.num_npus):
            chunks = set()
            for dest in range(self.num_npus):
                for sub in range(self.chunks_per_npu):
                    chunks.add(self._chunk_id(source, dest, sub))
            pre[source] = frozenset(chunks)
        return pre

    def postcondition(self) -> ChunkOwnership:
        post = {}
        for dest in range(self.num_npus):
            chunks = set()
            for source in range(self.num_npus):
                for sub in range(self.chunks_per_npu):
                    chunks.add(self._chunk_id(source, dest, sub))
            post[dest] = frozenset(chunks)
        return post

    def chunk_size(self, collective_size: float) -> float:
        """``collective_size`` is the per-NPU send buffer."""
        return collective_size / (self.num_npus * self.chunks_per_npu)

    def chunk_owner(self, chunk: int) -> int:
        """The NPU that originally holds ``chunk`` (its source)."""
        if not 0 <= chunk < self.num_chunks:
            raise CollectiveError(f"chunk {chunk} out of range for {self!r}")
        return chunk // (self.num_npus * self.chunks_per_npu)
