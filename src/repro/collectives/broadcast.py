"""Broadcast and Reduce collective patterns (rooted collectives)."""

from __future__ import annotations

from typing import Optional

from repro.collectives.pattern import ChunkOwnership, CollectivePattern
from repro.errors import CollectiveError

__all__ = ["Broadcast", "Reduce"]


class Broadcast(CollectivePattern):
    """Broadcast: the root NPU's chunk(s) are delivered to every NPU.

    Precondition: only the root holds the ``chunks_per_npu`` chunks.
    Postcondition: every NPU holds them.
    """

    name = "Broadcast"
    requires_reduction = False

    def __init__(self, num_npus: int, chunks_per_npu: int = 1, root: int = 0) -> None:
        super().__init__(num_npus, chunks_per_npu)
        if not 0 <= root < num_npus:
            raise CollectiveError(f"broadcast root {root} out of range for {num_npus} NPUs")
        self.root = int(root)

    @property
    def num_chunks(self) -> int:
        return self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        chunks = self.all_chunks()
        return {
            npu: (chunks if npu == self.root else frozenset())
            for npu in range(self.num_npus)
        }

    def postcondition(self) -> ChunkOwnership:
        chunks = self.all_chunks()
        return {npu: chunks for npu in range(self.num_npus)}

    def chunk_size(self, collective_size: float) -> float:
        """The broadcast buffer is split into ``chunks_per_npu`` chunks."""
        return collective_size / self.chunks_per_npu

    def __eq__(self, other: object) -> bool:
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        return self.root == other.root  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_npus, self.chunks_per_npu, self.root))


class Reduce(CollectivePattern):
    """Reduce: every NPU's partial is summed into the root NPU.

    TACOS synthesizes a Reduce by synthesizing the corresponding Broadcast on
    the link-reversed topology and reversing it in time (Fig. 11).

    Precondition: every NPU holds its partial copy of the chunk(s).
    Postcondition: the root holds the reduced chunk(s).
    """

    name = "Reduce"
    requires_reduction = True

    def __init__(self, num_npus: int, chunks_per_npu: int = 1, root: int = 0) -> None:
        super().__init__(num_npus, chunks_per_npu)
        if not 0 <= root < num_npus:
            raise CollectiveError(f"reduce root {root} out of range for {num_npus} NPUs")
        self.root = int(root)

    @property
    def num_chunks(self) -> int:
        return self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        chunks = self.all_chunks()
        return {npu: chunks for npu in range(self.num_npus)}

    def postcondition(self) -> ChunkOwnership:
        chunks = self.all_chunks()
        return {
            npu: (chunks if npu == self.root else frozenset())
            for npu in range(self.num_npus)
        }

    def chunk_size(self, collective_size: float) -> float:
        """The reduce buffer is split into ``chunks_per_npu`` chunks."""
        return collective_size / self.chunks_per_npu

    def non_reducing_dual(self) -> Optional[CollectivePattern]:
        """The Broadcast whose time-reversal implements this Reduce."""
        return Broadcast(self.num_npus, self.chunks_per_npu, root=self.root)

    def __eq__(self, other: object) -> bool:
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        return self.root == other.root  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_npus, self.chunks_per_npu, self.root))
