"""All-Gather collective pattern."""

from __future__ import annotations

from repro.collectives.pattern import ChunkOwnership, CollectivePattern

__all__ = ["AllGather"]


class AllGather(CollectivePattern):
    """All-Gather: every NPU ends up with every NPU's chunk(s).

    Precondition: NPU ``i`` holds its own ``chunks_per_npu`` chunks.
    Postcondition: every NPU holds all ``num_npus * chunks_per_npu`` chunks.
    """

    name = "AllGather"
    requires_reduction = False

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        return {npu: self.owned_chunks(npu) for npu in range(self.num_npus)}

    def postcondition(self) -> ChunkOwnership:
        everything = self.all_chunks()
        return {npu: everything for npu in range(self.num_npus)}

    def chunk_size(self, collective_size: float) -> float:
        """Each chunk is ``1 / (num_npus * chunks_per_npu)`` of the buffer.

        ``collective_size`` is the size of the fully gathered buffer each NPU
        ends up with (the paper's "All-Gather size").
        """
        return collective_size / (self.num_npus * self.chunks_per_npu)
