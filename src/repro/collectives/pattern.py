"""Collective communication patterns expressed as pre/postconditions.

Following Sec. IV-B of the paper, a collective pattern is fully described by

* a **precondition**: which chunks each NPU holds before the collective, and
* a **postcondition**: which chunks each NPU must hold afterwards.

Chunks are the atomic scheduling unit.  A pattern with ``chunks_per_npu > 1``
splits each NPU's buffer into multiple chunks that can travel the network
concurrently (the paper's chunking optimization, Sec. II-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Optional

from repro.errors import CollectiveError

__all__ = ["ChunkOwnership", "CollectivePattern", "FrozenPattern"]

#: Mapping from NPU index to the (frozen) set of chunk ids it holds.
ChunkOwnership = Dict[int, FrozenSet[int]]


class CollectivePattern(ABC):
    """Base class for collective communication patterns.

    Parameters
    ----------
    num_npus:
        Number of participating NPUs.
    chunks_per_npu:
        Number of chunks each NPU's buffer is split into.
    """

    #: Human-readable pattern name (e.g. ``"AllGather"``).
    name: str = "Collective"

    #: Whether the pattern reduces (sums) chunks rather than copying them.
    requires_reduction: bool = False

    def __init__(self, num_npus: int, chunks_per_npu: int = 1) -> None:
        if num_npus < 2:
            raise CollectiveError(f"a collective needs at least 2 NPUs, got {num_npus}")
        if chunks_per_npu < 1:
            raise CollectiveError(f"chunks_per_npu must be at least 1, got {chunks_per_npu}")
        self.num_npus = int(num_npus)
        self.chunks_per_npu = int(chunks_per_npu)

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_chunks(self) -> int:
        """Total number of distinct chunks that flow through the network."""

    @abstractmethod
    def precondition(self) -> ChunkOwnership:
        """Chunks held by each NPU before the collective starts."""

    @abstractmethod
    def postcondition(self) -> ChunkOwnership:
        """Chunks each NPU must hold when the collective completes."""

    @abstractmethod
    def chunk_size(self, collective_size: float) -> float:
        """Size in bytes of one chunk for a collective of ``collective_size`` bytes.

        ``collective_size`` is the per-NPU buffer size, matching how the paper
        reports collective sizes (e.g. "1 GB All-Reduce").
        """

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def owned_chunks(self, npu: int) -> FrozenSet[int]:
        """Chunk ids natively associated with ``npu`` (its buffer shard)."""
        self._check_npu(npu)
        start = npu * self.chunks_per_npu
        return frozenset(range(start, start + self.chunks_per_npu))

    def chunk_owner(self, chunk: int) -> int:
        """The NPU whose buffer shard chunk ``chunk`` belongs to."""
        if not 0 <= chunk < self.num_npus * self.chunks_per_npu:
            raise CollectiveError(f"chunk {chunk} out of range for {self!r}")
        return chunk // self.chunks_per_npu

    def all_chunks(self) -> FrozenSet[int]:
        """All chunk ids of the pattern."""
        return frozenset(range(self.num_chunks))

    def _check_npu(self, npu: int) -> None:
        if not 0 <= npu < self.num_npus:
            raise CollectiveError(f"NPU {npu} out of range for {self!r}")

    def unsatisfied(self) -> Dict[int, FrozenSet[int]]:
        """Chunks each NPU still needs (postcondition minus precondition)."""
        pre = self.precondition()
        post = self.postcondition()
        return {
            npu: frozenset(post.get(npu, frozenset()) - pre.get(npu, frozenset()))
            for npu in range(self.num_npus)
        }

    def total_transfers_lower_bound(self) -> int:
        """Minimum number of chunk deliveries any algorithm must perform."""
        return sum(len(chunks) for chunks in self.unsatisfied().values())

    # ------------------------------------------------------------------
    # Duals for reduction collectives
    # ------------------------------------------------------------------
    def non_reducing_dual(self) -> Optional["CollectivePattern"]:
        """The non-reducing pattern whose reversal implements this collective.

        Returns ``None`` for patterns that are already non-reducing (they are
        synthesized directly) and for composite patterns such as All-Reduce
        (which is synthesized as Reduce-Scatter followed by All-Gather).
        """
        return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_npus={self.num_npus}, "
            f"chunks_per_npu={self.chunks_per_npu})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CollectivePattern):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.num_npus == other.num_npus
            and self.chunks_per_npu == other.chunks_per_npu
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_npus, self.chunks_per_npu))


class FrozenPattern(CollectivePattern):
    """A pattern reconstituted from serialized pre/postcondition columns.

    The broadcast plane (:meth:`repro.core.synthesizer.TrialPayload.to_bytes`)
    ships patterns as their observable *conditions* — exactly what one direct
    synthesis trial consumes: the name, the dimensions, and the two ownership
    maps.  A :class:`FrozenPattern` carries those verbatim and nothing else;
    in particular it has no chunk-size rule (:meth:`chunk_size` raises),
    because the trial payload ships the precomputed chunk size alongside it.

    Equality is by conditions, not by type: a frozen pattern equals the
    pattern it was frozen from whenever name, dimensions, and both ownership
    maps match — that is what the broadcast round-trip suites assert.
    """

    requires_reduction = False

    def __init__(
        self,
        name: str,
        num_npus: int,
        chunks_per_npu: int,
        num_chunks: int,
        precondition: ChunkOwnership,
        postcondition: ChunkOwnership,
    ) -> None:
        super().__init__(num_npus, chunks_per_npu)
        if num_chunks < 1:
            raise CollectiveError(f"num_chunks must be at least 1, got {num_chunks}")
        self.name = str(name)
        self._num_chunks = int(num_chunks)
        self._precondition = {
            npu: frozenset(chunks) for npu, chunks in precondition.items()
        }
        self._postcondition = {
            npu: frozenset(chunks) for npu, chunks in postcondition.items()
        }

    @property
    def num_chunks(self) -> int:
        return self._num_chunks

    def precondition(self) -> ChunkOwnership:
        return dict(self._precondition)

    def postcondition(self) -> ChunkOwnership:
        return dict(self._postcondition)

    def chunk_size(self, collective_size: float) -> float:
        raise CollectiveError(
            f"{self.name}: a frozen pattern carries no chunk-size rule; the "
            "trial payload ships the precomputed chunk size instead"
        )

    def conditions_equal(self, other: "CollectivePattern") -> bool:
        """Whether ``other`` exposes the same observable conditions.

        Ownership maps are compared with absent NPUs normalized to empty
        chunk sets — patterns are free to omit empty rows, the serialized
        columns always materialize them.
        """

        def normalized(ownership: ChunkOwnership, num_npus: int) -> ChunkOwnership:
            return {
                npu: frozenset(ownership.get(npu, frozenset())) for npu in range(num_npus)
            }

        return (
            self.name == other.name
            and self.num_npus == other.num_npus
            and self.chunks_per_npu == other.chunks_per_npu
            and self.num_chunks == other.num_chunks
            and normalized(self._precondition, self.num_npus)
            == normalized(other.precondition(), other.num_npus)
            and normalized(self._postcondition, self.num_npus)
            == normalized(other.postcondition(), other.num_npus)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CollectivePattern):
            return NotImplemented
        return self.conditions_equal(other)

    def __hash__(self) -> int:
        return hash((self.name, self.num_npus, self.chunks_per_npu, self._num_chunks))
