"""Collective communication patterns (pre/postcondition formulation)."""

from repro.collectives.all_gather import AllGather
from repro.collectives.all_reduce import AllReduce
from repro.collectives.broadcast import Broadcast, Reduce
from repro.collectives.chunking import ChunkPlan, plan_chunks
from repro.collectives.gather_scatter import AllToAll, Gather, Scatter
from repro.collectives.pattern import ChunkOwnership, CollectivePattern
from repro.collectives.reduce_scatter import ReduceScatter

__all__ = [
    "AllGather",
    "AllReduce",
    "AllToAll",
    "Broadcast",
    "ChunkOwnership",
    "ChunkPlan",
    "CollectivePattern",
    "Gather",
    "Reduce",
    "ReduceScatter",
    "Scatter",
    "plan_chunks",
]
