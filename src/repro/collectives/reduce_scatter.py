"""Reduce-Scatter collective pattern."""

from __future__ import annotations

from repro.collectives.all_gather import AllGather
from repro.collectives.pattern import ChunkOwnership, CollectivePattern

__all__ = ["ReduceScatter"]


class ReduceScatter(CollectivePattern):
    """Reduce-Scatter: every NPU ends up with the sum of one buffer shard.

    Precondition: every NPU holds a local copy of all chunks.
    Postcondition: NPU ``i`` holds the (reduced) chunks of its own shard.

    TACOS synthesizes this pattern by synthesizing an All-Gather on the
    link-reversed topology and reversing the result in time (Fig. 11); the
    :meth:`non_reducing_dual` method exposes that dual.
    """

    name = "ReduceScatter"
    requires_reduction = True

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        everything = self.all_chunks()
        return {npu: everything for npu in range(self.num_npus)}

    def postcondition(self) -> ChunkOwnership:
        return {npu: self.owned_chunks(npu) for npu in range(self.num_npus)}

    def chunk_size(self, collective_size: float) -> float:
        """Each chunk is ``1 / (num_npus * chunks_per_npu)`` of the per-NPU buffer."""
        return collective_size / (self.num_npus * self.chunks_per_npu)

    def non_reducing_dual(self) -> CollectivePattern:
        """The All-Gather whose time-reversal implements this Reduce-Scatter."""
        return AllGather(self.num_npus, self.chunks_per_npu)
