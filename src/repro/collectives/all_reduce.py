"""All-Reduce collective pattern."""

from __future__ import annotations

from repro.collectives.all_gather import AllGather
from repro.collectives.pattern import ChunkOwnership, CollectivePattern
from repro.collectives.reduce_scatter import ReduceScatter

__all__ = ["AllReduce"]


class AllReduce(CollectivePattern):
    """All-Reduce: every NPU ends up with the sum of every NPU's buffer.

    The paper (Sec. II-A) treats All-Reduce as Reduce-Scatter followed by
    All-Gather, and TACOS synthesizes it exactly that way; the two phases are
    exposed through :meth:`reduce_scatter_phase` and :meth:`all_gather_phase`.

    Precondition: every NPU holds a local copy of all chunks.
    Postcondition: every NPU holds all (reduced) chunks.
    """

    name = "AllReduce"
    requires_reduction = True

    @property
    def num_chunks(self) -> int:
        return self.num_npus * self.chunks_per_npu

    def precondition(self) -> ChunkOwnership:
        everything = self.all_chunks()
        return {npu: everything for npu in range(self.num_npus)}

    def postcondition(self) -> ChunkOwnership:
        everything = self.all_chunks()
        return {npu: everything for npu in range(self.num_npus)}

    def chunk_size(self, collective_size: float) -> float:
        """Each chunk is ``1 / (num_npus * chunks_per_npu)`` of the per-NPU buffer."""
        return collective_size / (self.num_npus * self.chunks_per_npu)

    def reduce_scatter_phase(self) -> ReduceScatter:
        """The Reduce-Scatter executed as the first half of the All-Reduce."""
        return ReduceScatter(self.num_npus, self.chunks_per_npu)

    def all_gather_phase(self) -> AllGather:
        """The All-Gather executed as the second half of the All-Reduce."""
        return AllGather(self.num_npus, self.chunks_per_npu)
