"""Double Binary Tree (DBT) All-Reduce, as popularized by NCCL 2.4.

Two complementary binary trees are laid over the ranks; each tree reduces and
broadcasts half of the buffer blocks, so both trees work concurrently and
every rank's links are used in both directions.  Like RHD it assumes a
power-of-two-friendly, low-diameter network; on sparse physical topologies
its long tree edges become multi-hop and congest (Fig. 2a).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.trees import SpanningTree, trees_to_all_reduce_schedule
from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule

__all__ = ["dbt_all_reduce", "build_complete_binary_tree"]


def build_complete_binary_tree(num_npus: int, rank_order: List[int]) -> SpanningTree:
    """Build a complete binary tree over ``rank_order`` (heap layout).

    ``rank_order[0]`` becomes the root; the node at position ``i`` has the
    nodes at positions ``2i + 1`` and ``2i + 2`` as children.
    """
    if len(rank_order) != num_npus:
        raise SimulationError(
            f"rank order has {len(rank_order)} entries but the collective has {num_npus} NPUs"
        )
    parent: Dict[int, int] = {}
    for position in range(1, num_npus):
        parent_position = (position - 1) // 2
        parent[rank_order[position]] = rank_order[parent_position]
    return SpanningTree(root=rank_order[0], parent=parent)


def dbt_all_reduce(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Double Binary Tree All-Reduce schedule.

    Tree 1 is a complete binary tree over ranks ``0..N-1``; tree 2 uses the
    reversed rank order so interior nodes of one tree tend to be leaves of the
    other (the NCCL construction's load-balancing intent).  Even-indexed
    blocks ride tree 1, odd-indexed blocks ride tree 2.
    """
    if num_npus < 2:
        raise SimulationError(f"DBT All-Reduce needs at least 2 NPUs, got {num_npus}")
    tree_one = build_complete_binary_tree(num_npus, list(range(num_npus)))
    tree_two = build_complete_binary_tree(num_npus, list(reversed(range(num_npus))))
    even_blocks = [block for block in range(num_npus) if block % 2 == 0]
    odd_blocks = [block for block in range(num_npus) if block % 2 == 1]
    assignments: List[Tuple[SpanningTree, List[int]]] = [
        (tree_one, even_blocks),
        (tree_two, odd_blocks),
    ]
    schedule = trees_to_all_reduce_schedule(
        assignments,
        num_npus,
        collective_size,
        chunks_per_npu=chunks_per_npu,
        name="DBT",
    )
    return schedule
