"""BlueConnect: hierarchical multi-dimensional ring All-Reduce.

BlueConnect (Cho et al., IBM JRD 2019) decomposes an All-Reduce over a
multi-dimensional (symmetric) network into per-dimension ring
Reduce-Scatters executed dimension by dimension, followed by per-dimension
ring All-Gathers in the reverse dimension order.  After the Reduce-Scatter
over dimension ``j``, each NPU is responsible only for the buffer blocks
whose ``j``-th coordinate digit matches its own.

NPU and block indices use the same mixed-radix layout as
:func:`repro.topology.builders.mesh.grid_index` (first dimension varies
fastest), so a schedule built for dims ``(2, 4, 8)`` lines up with the 3D-RFS
topology built from the same dimension list.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend
from repro.topology.builders.mesh import grid_coordinates, grid_index

__all__ = ["blueconnect_all_reduce", "hierarchical_all_reduce_sends"]


def _block_chunks(block: int, chunks_per_npu: int) -> range:
    return range(block * chunks_per_npu, (block + 1) * chunks_per_npu)


def _fiber_members(coords: Tuple[int, ...], axis: int, dims: Sequence[int]) -> List[int]:
    """NPUs that differ from ``coords`` only along ``axis``, ordered by that coordinate."""
    members = []
    for position in range(dims[axis]):
        member = list(coords)
        member[axis] = position
        members.append(grid_index(member, dims))
    return members


def hierarchical_all_reduce_sends(
    dims: Sequence[int],
    dimension_order: Sequence[int],
    *,
    chunks_per_npu: int,
    sub_chunk: int,
    step_offset: int = 0,
    direction: int = 1,
) -> Tuple[List[LogicalSend], int]:
    """Sends of one hierarchical All-Reduce pass over ``dims``.

    ``dimension_order`` gives the Reduce-Scatter dimension sequence (the
    All-Gather runs it in reverse).  ``sub_chunk`` selects which of the
    ``chunks_per_npu`` sub-chunks of every block this pass carries — Themis
    runs several passes with rotated dimension orders, one per sub-chunk.
    ``direction`` chooses the rotation sense of every per-dimension ring
    (+1 or -1); alternating the direction across sub-chunks uses both link
    directions of a torus.

    Returns the sends and the total number of steps consumed.
    """
    dims = tuple(int(dim) for dim in dims)
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    if sorted(dimension_order) != list(range(len(dims))):
        raise SimulationError(
            f"dimension order {dimension_order} is not a permutation of 0..{len(dims) - 1}"
        )
    if direction not in (1, -1):
        raise SimulationError(f"ring direction must be +1 or -1, got {direction}")

    sends: List[LogicalSend] = []
    step = step_offset

    def block_matches(block: int, npu_coords: Tuple[int, ...], axes: Sequence[int]) -> bool:
        block_coords = grid_coordinates(block, dims)
        return all(block_coords[axis] == npu_coords[axis] for axis in axes)

    def sweep(axis: int, completed_axes: Sequence[int], reduce_phase: bool, step_base: int) -> None:
        size = dims[axis]
        for npu in range(num_npus):
            coords = grid_coordinates(npu, dims)
            members = _fiber_members(coords, axis, dims)
            position = coords[axis]
            for local_step in range(size - 1):
                if reduce_phase:
                    # Ring Reduce-Scatter over the fiber: the group of blocks
                    # whose axis digit is ``group`` is forwarded around the
                    # ring, accumulating partials, and comes to rest on the
                    # NPU whose coordinate equals the group index.
                    group = (position - direction * (local_step + 1)) % size
                else:
                    # Ring All-Gather over the fiber: each NPU circulates the
                    # group it is responsible for.
                    group = (position - direction * local_step) % size
                dest = members[(position + direction) % size]
                for block in range(num_npus):
                    block_coords = grid_coordinates(block, dims)
                    if block_coords[axis] != group:
                        continue
                    if not block_matches(block, coords, completed_axes):
                        continue
                    chunk = block * chunks_per_npu + sub_chunk
                    sends.append(
                        LogicalSend(step=step_base + local_step, chunk=chunk, source=npu, dest=dest)
                    )

    # ------------------------------------------------------------------
    # Reduce-Scatter sweeps, one dimension at a time.
    # ------------------------------------------------------------------
    completed_axes: List[int] = []
    for axis in dimension_order:
        if dims[axis] > 1:
            sweep(axis, completed_axes, reduce_phase=True, step_base=step)
            step += dims[axis] - 1
        completed_axes.append(axis)

    # ------------------------------------------------------------------
    # All-Gather sweeps in reverse dimension order.
    # ------------------------------------------------------------------
    for axis in reversed(list(dimension_order)):
        completed_axes.remove(axis)
        if dims[axis] > 1:
            sweep(axis, completed_axes, reduce_phase=False, step_base=step)
            step += dims[axis] - 1

    return sends, step - step_offset


def blueconnect_all_reduce(
    dims: Sequence[int],
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the BlueConnect All-Reduce schedule for a multi-dimensional network.

    All sub-chunks follow the same (canonical) dimension order, which is what
    distinguishes BlueConnect from Themis.
    """
    dims = tuple(int(dim) for dim in dims)
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    if num_npus < 2:
        raise SimulationError(f"BlueConnect needs at least 2 NPUs, got dims {dims}")
    sends: List[LogicalSend] = []
    canonical_order = list(range(len(dims)))
    for sub_chunk in range(chunks_per_npu):
        pass_sends, _ = hierarchical_all_reduce_sends(
            dims,
            canonical_order,
            chunks_per_npu=chunks_per_npu,
            sub_chunk=sub_chunk,
            direction=1 if sub_chunk % 2 == 0 else -1,
        )
        sends.extend(pass_sends)
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="BlueConnect",
        pattern_name="AllReduce",
        metadata={"dims": dims, "chunks_per_npu": chunks_per_npu},
    )
