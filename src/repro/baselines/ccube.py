"""C-Cube-style dual-binary-tree All-Reduce over the DGX-1 topology.

C-Cube (Cho et al., HPCA 2023) manually embeds two binary trees into the
DGX-1 NVLink topology and runs two tree All-Reduces concurrently, each
carrying half of the buffer.  The construction deliberately uses only four of
the six NVLinks per GPU so the two trees stay contention-free; the unused
links (and the idle time inherent to tree reductions) cap its efficiency —
the effect the paper's Fig. 17(b) comparison highlights.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.trees import SpanningTree, trees_to_all_reduce_schedule
from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule
from repro.topology.topology import Topology

__all__ = ["ccube_all_reduce", "CCUBE_TREE_ONE", "CCUBE_TREE_TWO"]

#: First binary tree embedded in the DGX-1 graph (root GPU 0).
CCUBE_TREE_ONE = SpanningTree(
    root=0,
    parent={1: 0, 2: 0, 4: 1, 5: 1, 3: 2, 6: 2, 7: 3},
)

#: Second binary tree, the mirror image of the first (root GPU 7).
CCUBE_TREE_TWO = SpanningTree(
    root=7,
    parent={6: 7, 5: 7, 3: 6, 2: 6, 4: 5, 1: 5, 0: 4},
)


def ccube_all_reduce(
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    topology: Topology = None,
) -> LogicalSchedule:
    """Build the C-Cube-style All-Reduce schedule for an 8-GPU DGX-1 system.

    Parameters
    ----------
    collective_size:
        Per-GPU buffer size in bytes.
    chunks_per_npu:
        Sub-chunks per block (processed concurrently within each tree).
    topology:
        Optional DGX-1 topology to validate the tree edges against.
    """
    num_npus = 8
    if topology is not None:
        if topology.num_npus != num_npus:
            raise SimulationError(
                f"C-Cube targets an 8-GPU DGX-1 system, got {topology.num_npus} NPUs"
            )
        for tree in (CCUBE_TREE_ONE, CCUBE_TREE_TWO):
            for child, parent in tree.parent.items():
                if not (topology.has_link(child, parent) and topology.has_link(parent, child)):
                    raise SimulationError(
                        f"C-Cube tree edge {child}<->{parent} is missing from {topology.name}"
                    )

    even_blocks = [block for block in range(num_npus) if block % 2 == 0]
    odd_blocks = [block for block in range(num_npus) if block % 2 == 1]
    assignments: List[Tuple[SpanningTree, List[int]]] = [
        (CCUBE_TREE_ONE, even_blocks),
        (CCUBE_TREE_TWO, odd_blocks),
    ]
    schedule = trees_to_all_reduce_schedule(
        assignments,
        num_npus,
        collective_size,
        chunks_per_npu=chunks_per_npu,
        name="C-Cube",
    )
    return schedule
