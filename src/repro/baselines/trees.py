"""Tree-based collective schedule construction helpers.

Several baselines (Double Binary Tree, C-Cube, MultiTree) execute an
All-Reduce by reducing partials up a spanning tree to its root and then
broadcasting the reduced result back down.  This module provides the shared
machinery: a tree description, validity checks, and the conversion of a set
of trees (each responsible for a subset of buffer blocks) into a
:class:`~repro.simulator.schedule.LogicalSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend

__all__ = ["SpanningTree", "trees_to_all_reduce_schedule", "trees_to_all_gather_schedule"]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree over NPU ranks.

    Attributes
    ----------
    root:
        The root NPU.
    parent:
        Mapping from every non-root NPU to its parent.  Every NPU of the
        collective must appear either as the root or as a key.
    """

    root: int
    parent: Dict[int, int] = field(default_factory=dict)

    def nodes(self) -> List[int]:
        """All NPUs covered by the tree."""
        return sorted({self.root, *self.parent.keys(), *self.parent.values()})

    def children(self) -> Dict[int, List[int]]:
        """Mapping from each NPU to its children."""
        result: Dict[int, List[int]] = {}
        for child, parent in self.parent.items():
            result.setdefault(parent, []).append(child)
        return result

    def depth(self, node: int) -> int:
        """Distance in tree edges from ``node`` up to the root."""
        depth = 0
        current = node
        seen = {node}
        while current != self.root:
            current = self.parent.get(current)
            if current is None or current in seen:
                raise SimulationError(f"node {node} is not connected to root {self.root}")
            seen.add(current)
            depth += 1
        return depth

    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max((self.depth(node) for node in self.nodes()), default=0)

    def validate(self, num_npus: int) -> None:
        """Check the tree spans exactly the NPUs ``0 .. num_npus - 1``."""
        nodes = set(self.nodes())
        expected = set(range(num_npus))
        if nodes != expected:
            raise SimulationError(
                f"tree rooted at {self.root} spans {sorted(nodes)} but the collective has NPUs {sorted(expected)}"
            )
        for node in self.parent:
            self.depth(node)  # raises on cycles / disconnections


def _block_chunks(block: int, chunks_per_npu: int) -> range:
    return range(block * chunks_per_npu, (block + 1) * chunks_per_npu)


def trees_to_all_reduce_schedule(
    trees: Sequence[Tuple[SpanningTree, Sequence[int]]],
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    name: str = "Tree",
    serialize_chunks: bool = False,
) -> LogicalSchedule:
    """Build an All-Reduce schedule from (tree, blocks) assignments.

    Each tree reduces its blocks from the leaves to its root, then broadcasts
    them back down.  ``serialize_chunks=True`` reproduces the MultiTree
    limitation of not overlapping chunks: the reduce/broadcast of block ``i``
    only starts after block ``i - 1`` has finished.
    """
    if num_npus < 2:
        raise SimulationError(f"tree All-Reduce needs at least 2 NPUs, got {num_npus}")
    sends: List[LogicalSend] = []
    for tree, blocks in trees:
        tree.validate(num_npus)
        max_depth = tree.max_depth()
        phase_length = 2 * max_depth + 1
        for block_index, block in enumerate(blocks):
            for sub_index, chunk in enumerate(_block_chunks(block, chunks_per_npu)):
                serial_index = block_index * chunks_per_npu + sub_index
                offset = serial_index * phase_length if serialize_chunks else 0
                # Reduce phase: deepest nodes send first.
                for node in tree.nodes():
                    if node == tree.root:
                        continue
                    depth = tree.depth(node)
                    sends.append(
                        LogicalSend(
                            step=offset + (max_depth - depth),
                            chunk=chunk,
                            source=node,
                            dest=tree.parent[node],
                        )
                    )
                # Broadcast phase: the root's result flows back down, level by level.
                for node in tree.nodes():
                    if node == tree.root:
                        continue
                    depth = tree.depth(node)
                    sends.append(
                        LogicalSend(
                            step=offset + max_depth + depth,
                            chunk=chunk,
                            source=tree.parent[node],
                            dest=node,
                        )
                    )
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name=name,
        pattern_name="AllReduce",
        metadata={"chunks_per_npu": chunks_per_npu, "num_trees": len(trees)},
    )


def trees_to_all_gather_schedule(
    trees: Sequence[Tuple[SpanningTree, Sequence[int]]],
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    name: str = "Tree",
    serialize_chunks: bool = False,
) -> LogicalSchedule:
    """Build an All-Gather schedule: each tree broadcasts its blocks from its root."""
    if num_npus < 2:
        raise SimulationError(f"tree All-Gather needs at least 2 NPUs, got {num_npus}")
    sends: List[LogicalSend] = []
    for tree, blocks in trees:
        tree.validate(num_npus)
        max_depth = tree.max_depth()
        for block_index, block in enumerate(blocks):
            offset = block_index * max_depth if serialize_chunks else 0
            for node in tree.nodes():
                if node == tree.root:
                    continue
                depth = tree.depth(node)
                step = offset + depth - 1
                for chunk in _block_chunks(block, chunks_per_npu):
                    sends.append(
                        LogicalSend(step=step, chunk=chunk, source=tree.parent[node], dest=node)
                    )
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name=name,
        pattern_name="AllGather",
        metadata={"chunks_per_npu": chunks_per_npu, "num_trees": len(trees)},
    )
