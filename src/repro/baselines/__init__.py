"""Baseline collective algorithms and baseline synthesizers."""

from repro.baselines.blueconnect import blueconnect_all_reduce
from repro.baselines.ccube import CCUBE_TREE_ONE, CCUBE_TREE_TWO, ccube_all_reduce
from repro.baselines.dbt import build_complete_binary_tree, dbt_all_reduce
from repro.baselines.direct import direct_all_gather, direct_all_reduce, direct_reduce_scatter
from repro.baselines.multitree import build_bfs_tree, multitree_all_reduce
from repro.baselines.registry import (
    ALGORITHM_CAPABILITIES,
    BASIC_ALL_REDUCE_BASELINES,
    SYNTHESIZER_CAPABILITIES,
    build_baseline_all_reduce,
)
from repro.baselines.rhd import rhd_all_gather, rhd_all_reduce
from repro.baselines.ring import ring_all_gather, ring_all_reduce, ring_reduce_scatter
from repro.baselines.taccl_like import TacclLikeResult, TacclLikeSynthesizer
from repro.baselines.themis import themis_all_reduce
from repro.baselines.trees import (
    SpanningTree,
    trees_to_all_gather_schedule,
    trees_to_all_reduce_schedule,
)

__all__ = [
    "ALGORITHM_CAPABILITIES",
    "BASIC_ALL_REDUCE_BASELINES",
    "CCUBE_TREE_ONE",
    "CCUBE_TREE_TWO",
    "SYNTHESIZER_CAPABILITIES",
    "SpanningTree",
    "TacclLikeResult",
    "TacclLikeSynthesizer",
    "blueconnect_all_reduce",
    "build_baseline_all_reduce",
    "build_bfs_tree",
    "build_complete_binary_tree",
    "ccube_all_reduce",
    "dbt_all_reduce",
    "direct_all_gather",
    "direct_all_reduce",
    "direct_reduce_scatter",
    "multitree_all_reduce",
    "rhd_all_gather",
    "rhd_all_reduce",
    "ring_all_gather",
    "ring_all_reduce",
    "ring_reduce_scatter",
    "themis_all_reduce",
    "trees_to_all_gather_schedule",
    "trees_to_all_reduce_schedule",
]
