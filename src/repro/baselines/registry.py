"""Registry of baseline All-Reduce algorithms and their capability matrix.

This module centralizes two things the paper presents as Tables I and II:

* a uniform way to instantiate the basic All-Reduce baselines
  (:func:`build_baseline_all_reduce`), used by the motivation and evaluation
  experiments to sweep over algorithms; and
* the qualitative capability matrices of collective algorithms
  (:data:`ALGORITHM_CAPABILITIES`, Table I) and synthesizers
  (:data:`SYNTHESIZER_CAPABILITIES`, Table II), with tests asserting the
  claims the paper makes about TACOS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import RegistryError, SimulationError
from repro.simulator.schedule import LogicalSchedule
from repro.topology.topology import Topology

__all__ = [
    "ALGORITHM_CAPABILITIES",
    "SYNTHESIZER_CAPABILITIES",
    "BASIC_ALL_REDUCE_BASELINES",
    "build_baseline_all_reduce",
]


def build_baseline_all_reduce(
    name: str,
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Instantiate a schedule-producing All-Reduce baseline by name.

    This is a thin compatibility wrapper over the unified algorithm registry
    (:data:`repro.api.registry.ALGORITHMS`); names are case-insensitive, so
    the historical ``"Ring"``, ``"UniRing"``, ``"Direct"``, ``"RHD"``,
    ``"DBT"``, and ``"MultiTree"`` spellings keep working.  ``RHD`` requires
    a power-of-two NPU count.
    """
    # Imported lazily: repro.api.builtins registers the baselines defined in
    # this package, so a module-level import would be circular.
    from repro.api.registry import ALGORITHMS
    from repro.collectives.all_reduce import AllReduce

    try:
        builder = ALGORITHMS.get(name)
    except RegistryError as exc:
        raise SimulationError(f"unknown baseline algorithm {name!r}: {exc}") from None
    try:
        artifact = builder(
            topology, AllReduce(topology.num_npus, chunks_per_npu), collective_size
        )
    except TypeError as exc:
        # e.g. BlueConnect/Themis require a `dims` parameter this simple
        # entry point does not take; route those through repro.api.run.
        raise SimulationError(
            f"baseline {name!r} needs extra parameters not supported here "
            f"(use repro.api.run): {exc}"
        ) from None
    if artifact.schedule is None:
        raise SimulationError(
            f"algorithm {name!r} does not produce a logical schedule; "
            "use repro.api.run for synthesizer-style algorithms"
        )
    return artifact.schedule


#: Names accepted by :func:`build_baseline_all_reduce` that need no extra inputs.
BASIC_ALL_REDUCE_BASELINES = ("Ring", "UniRing", "Direct", "RHD", "DBT")


@dataclass(frozen=True)
class AlgorithmCapability:
    """One row of Table I: which topologies an All-Reduce algorithm targets."""

    name: str
    ring: bool = False
    fully_connected: bool = False
    switch: bool = False
    multidim_homogeneous: bool = False
    multidim_heterogeneous: bool = False
    asymmetric: bool = False
    any_topology: bool = False


#: Table I — All-Reduce algorithms and their preferred physical topologies.
ALGORITHM_CAPABILITIES: Dict[str, AlgorithmCapability] = {
    "Ring": AlgorithmCapability(name="Ring", ring=True),
    "Direct": AlgorithmCapability(name="Direct", fully_connected=True),
    "RHD": AlgorithmCapability(name="RHD", switch=True),
    "DBT": AlgorithmCapability(name="DBT", switch=True),
    "BlueConnect": AlgorithmCapability(
        name="BlueConnect", ring=True, fully_connected=True, switch=True,
        multidim_homogeneous=True, multidim_heterogeneous=True,
    ),
    "Themis": AlgorithmCapability(
        name="Themis", ring=True, fully_connected=True, switch=True,
        multidim_homogeneous=True, multidim_heterogeneous=True,
    ),
    "TTO": AlgorithmCapability(name="TTO", multidim_homogeneous=True, asymmetric=True),
    "C-Cube": AlgorithmCapability(
        name="C-Cube", multidim_homogeneous=True, multidim_heterogeneous=True, asymmetric=True
    ),
    "TACOS": AlgorithmCapability(
        name="TACOS", ring=True, fully_connected=True, switch=True,
        multidim_homogeneous=True, multidim_heterogeneous=True,
        asymmetric=True, any_topology=True,
    ),
}


@dataclass(frozen=True)
class SynthesizerCapability:
    """One row of Table II: qualitative comparison of collective synthesizers."""

    name: str
    asymmetric: bool = False
    heterogeneous: bool = False
    autonomous: bool = False
    removes_congestion: bool = False
    scalable: bool = False


#: Table II — qualitative comparison of collective algorithm synthesizers.
SYNTHESIZER_CAPABILITIES: Dict[str, SynthesizerCapability] = {
    "SCCL": SynthesizerCapability(name="SCCL", autonomous=True),
    "Blink": SynthesizerCapability(name="Blink", asymmetric=True, autonomous=True),
    "MultiTree": SynthesizerCapability(
        name="MultiTree", asymmetric=True, autonomous=True, scalable=True
    ),
    "TACCL": SynthesizerCapability(
        name="TACCL", asymmetric=False, heterogeneous=False, autonomous=False
    ),
    "TACOS": SynthesizerCapability(
        name="TACOS", asymmetric=True, heterogeneous=True, autonomous=True,
        removes_congestion=True, scalable=True,
    ),
}
