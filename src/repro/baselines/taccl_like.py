"""TACCL-like step-synchronous, congestion-oblivious collective synthesizer.

TACCL (Shah et al., NSDI 2023) casts collective synthesis as an integer
linear program over step-synchronous rounds.  The two properties the paper
contrasts against TACOS are reproduced here without requiring an MILP solver:

* **congestion-obliviousness** — the formulation does not model per-link
  serialization, so several chunks may be scheduled over the same link in the
  same round.  The schedules therefore look short on paper but stretch once
  the congestion-aware simulator serializes the contending transfers.
* **expensive search** — TACCL explores a combinatorial space.  We emulate
  that with randomized restarts plus per-round exhaustive candidate scoring,
  which is markedly slower than TACOS' single greedy matching pass and grows
  quickly with topology size (the qualitative trend of Fig. 19 / Table V);
  the absolute NP-hard blow-up of a real MILP is *not* reproduced.

The synthesizer produces a step-based :class:`LogicalSchedule`, mirroring
TACCL's round-based output.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.collectives.all_gather import AllGather
from repro.collectives.all_reduce import AllReduce
from repro.collectives.pattern import CollectivePattern
from repro.errors import SynthesisError
from repro.simulator.schedule import LogicalSchedule, LogicalSend
from repro.topology.topology import Topology

__all__ = ["TacclLikeSynthesizer", "TacclLikeResult"]


@dataclass
class TacclLikeResult:
    """A synthesized schedule plus the wall-clock time the search took."""

    schedule: LogicalSchedule
    wall_clock_seconds: float
    restarts: int


class TacclLikeSynthesizer:
    """Step-synchronous congestion-oblivious synthesizer (TACCL stand-in).

    Parameters
    ----------
    restarts:
        Number of randomized search restarts; the schedule with the fewest
        rounds (TACCL's latency objective) is kept.
    seed:
        Base random seed.
    """

    def __init__(self, restarts: int = 20, seed: int = 0) -> None:
        if restarts < 1:
            raise SynthesisError(f"restarts must be at least 1, got {restarts}")
        self.restarts = restarts
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize_all_gather(
        self, topology: Topology, collective_size: float, *, chunks_per_npu: int = 1
    ) -> TacclLikeResult:
        """Synthesize a step-based All-Gather schedule."""
        pattern = AllGather(topology.num_npus, chunks_per_npu)
        started = _time.perf_counter()
        best: Optional[List[LogicalSend]] = None
        best_steps = None
        for restart in range(self.restarts):
            rng = random.Random(self.seed + restart)
            sends, steps = self._search_all_gather(topology, pattern, rng)
            if best is None or steps < best_steps:
                best, best_steps = sends, steps
        elapsed = _time.perf_counter() - started
        chunk_size = pattern.chunk_size(collective_size)
        schedule = LogicalSchedule(
            sends=best,
            num_npus=topology.num_npus,
            chunk_size=chunk_size,
            collective_size=collective_size,
            name="TACCL-like",
            pattern_name="AllGather",
            metadata={"steps": best_steps, "chunks_per_npu": chunks_per_npu},
        )
        return TacclLikeResult(schedule=schedule, wall_clock_seconds=elapsed, restarts=self.restarts)

    def synthesize_all_reduce(
        self, topology: Topology, collective_size: float, *, chunks_per_npu: int = 1
    ) -> TacclLikeResult:
        """Synthesize an All-Reduce as a mirrored Reduce-Scatter plus the All-Gather."""
        all_gather = self.synthesize_all_gather(
            topology, collective_size, chunks_per_npu=chunks_per_npu
        )
        ag_sends = all_gather.schedule.sends
        ag_steps = all_gather.schedule.num_steps
        # Reduce-Scatter = the All-Gather mirrored in time with reversed
        # directions (the same reversal trick TACOS uses, Fig. 11).
        rs_sends = [
            LogicalSend(
                step=ag_steps - 1 - send.step,
                chunk=send.chunk,
                source=send.dest,
                dest=send.source,
            )
            for send in ag_sends
        ]
        combined = rs_sends + [
            LogicalSend(step=send.step + ag_steps, chunk=send.chunk, source=send.source, dest=send.dest)
            for send in ag_sends
        ]
        schedule = LogicalSchedule(
            sends=combined,
            num_npus=topology.num_npus,
            chunk_size=all_gather.schedule.chunk_size,
            collective_size=collective_size,
            name="TACCL-like",
            pattern_name="AllReduce",
            metadata={"steps": 2 * ag_steps, "chunks_per_npu": chunks_per_npu},
        )
        return TacclLikeResult(
            schedule=schedule,
            wall_clock_seconds=all_gather.wall_clock_seconds,
            restarts=self.restarts,
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _search_all_gather(
        self, topology: Topology, pattern: CollectivePattern, rng: random.Random
    ) -> Tuple[List[LogicalSend], int]:
        """One randomized step-synchronous search run.

        Every round, each (destination, chunk) demand greedily picks a source
        neighbour that holds the chunk; all selected transfers execute in the
        same round with no per-link exclusivity (congestion is ignored).
        """
        num_npus = topology.num_npus
        holdings: List[Set[int]] = [set(chunks) for chunks in
                                    (pattern.precondition().get(npu, frozenset()) for npu in range(num_npus))]
        unsatisfied: Set[Tuple[int, int]] = set()
        postcondition = pattern.postcondition()
        for npu in range(num_npus):
            for chunk in sorted(postcondition.get(npu, frozenset()) - frozenset(holdings[npu])):
                unsatisfied.add((npu, chunk))

        sends: List[LogicalSend] = []
        step = 0
        max_steps = 4 * num_npus * max(1, pattern.chunks_per_npu) + 16
        while unsatisfied:
            if step > max_steps:
                raise SynthesisError(
                    f"TACCL-like synthesis did not converge on {topology.name} after {max_steps} rounds"
                )
            arrivals: List[Tuple[int, int]] = []
            # Sort before the seeded shuffle: the permutation rng.shuffle
            # produces is a function of the input order, so shuffling a raw
            # set-iteration snapshot would leak hash-table layout into the
            # synthesized schedule.
            demands = sorted(unsatisfied)
            rng.shuffle(demands)
            for dest, chunk in demands:
                # Exhaustively score every in-neighbour holding the chunk
                # (this per-round scoring loop is the expensive part that makes
                # the search slower than TACOS' single matching pass).
                candidates = [
                    source
                    for source in topology.in_neighbors(dest)
                    if chunk in holdings[source]
                ]
                if not candidates:
                    continue
                scored = sorted(
                    candidates,
                    key=lambda source: (topology.link(source, dest).beta, rng.random()),
                )
                source = scored[0]
                sends.append(LogicalSend(step=step, chunk=chunk, source=source, dest=dest))
                arrivals.append((dest, chunk))
            if not arrivals:
                raise SynthesisError(
                    f"TACCL-like synthesis stalled on {topology.name}; is the topology strongly connected?"
                )
            for dest, chunk in arrivals:
                holdings[dest].add(chunk)
                unsatisfied.discard((dest, chunk))
            step += 1
        return sends, step
