"""Recursive Halving-Doubling (RHD) All-Reduce.

RHD performs ``log2(N)`` recursive-halving exchange steps (Reduce-Scatter)
followed by ``log2(N)`` recursive-doubling steps (All-Gather).  At halving
step ``k`` every NPU exchanges, with the partner differing in bit ``k``, the
half of its current responsibility range that belongs to the partner's side.
It requires a power-of-two NPU count and prefers hypercube-like connectivity;
on other topologies the long-distance partners cause congestion (Fig. 1).
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend

__all__ = ["rhd_all_reduce", "rhd_all_gather"]


def _log2_exact(value: int) -> int:
    exponent = value.bit_length() - 1
    if value <= 0 or (1 << exponent) != value:
        raise SimulationError(f"RHD requires a power-of-two NPU count, got {value}")
    return exponent


def _block_chunks(block: int, chunks_per_npu: int) -> range:
    return range(block * chunks_per_npu, (block + 1) * chunks_per_npu)


def _matches_in_low_bits(block: int, reference: int, bits: int) -> bool:
    """Whether ``block`` and ``reference`` agree in bit positions ``0 .. bits-1``."""
    if bits <= 0:
        return True
    mask = (1 << bits) - 1
    return (block & mask) == (reference & mask)


def _halving_sends(
    num_npus: int, chunks_per_npu: int, step_offset: int
) -> List[LogicalSend]:
    """Recursive-halving (Reduce-Scatter) exchange steps."""
    stages = _log2_exact(num_npus)
    sends = []
    for k in range(stages):
        for npu in range(num_npus):
            partner = npu ^ (1 << k)
            for block in range(num_npus):
                # Blocks still owned by this NPU's responsibility range ...
                if not _matches_in_low_bits(block, npu, k):
                    continue
                # ... that belong to the partner's half at bit k.
                if ((block >> k) & 1) != ((partner >> k) & 1):
                    continue
                for chunk in _block_chunks(block, chunks_per_npu):
                    sends.append(
                        LogicalSend(step=step_offset + k, chunk=chunk, source=npu, dest=partner)
                    )
    return sends


def _doubling_sends(
    num_npus: int, chunks_per_npu: int, step_offset: int
) -> List[LogicalSend]:
    """Recursive-doubling (All-Gather) exchange steps."""
    stages = _log2_exact(num_npus)
    sends = []
    for index, k in enumerate(reversed(range(stages))):
        for npu in range(num_npus):
            partner = npu ^ (1 << k)
            for block in range(num_npus):
                # The NPU currently holds blocks agreeing with it in bits 0..k.
                if not _matches_in_low_bits(block, npu, k + 1):
                    continue
                for chunk in _block_chunks(block, chunks_per_npu):
                    sends.append(
                        LogicalSend(step=step_offset + index, chunk=chunk, source=npu, dest=partner)
                    )
    return sends


def rhd_all_reduce(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Recursive Halving-Doubling All-Reduce schedule."""
    stages = _log2_exact(num_npus)
    sends = _halving_sends(num_npus, chunks_per_npu, step_offset=0)
    sends.extend(_doubling_sends(num_npus, chunks_per_npu, step_offset=stages))
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="RHD",
        pattern_name="AllReduce",
        metadata={"chunks_per_npu": chunks_per_npu},
    )


def rhd_all_gather(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the recursive-doubling All-Gather schedule."""
    _log2_exact(num_npus)
    sends = _doubling_sends(num_npus, chunks_per_npu, step_offset=0)
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="RHD",
        pattern_name="AllGather",
        metadata={"chunks_per_npu": chunks_per_npu},
    )
