"""Recursive Halving-Doubling (RHD) All-Reduce.

RHD performs ``log2(N)`` recursive-halving exchange steps (Reduce-Scatter)
followed by ``log2(N)`` recursive-doubling steps (All-Gather).  At halving
step ``k`` every NPU exchanges, with the partner differing in bit ``k``, the
half of its current responsibility range that belongs to the partner's side.
It requires a power-of-two NPU count and prefers hypercube-like connectivity;
on other topologies the long-distance partners cause congestion (Fig. 1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend, sends_from_columns

__all__ = ["rhd_all_reduce", "rhd_all_gather"]


def _log2_exact(value: int) -> int:
    exponent = value.bit_length() - 1
    if value <= 0 or (1 << exponent) != value:
        raise SimulationError(f"RHD requires a power-of-two NPU count, got {value}")
    return exponent


def _stage_sends(
    num_npus: int, chunks_per_npu: int, step: int, k: int, low_bits: int
) -> List[LogicalSend]:
    """One exchange stage's sends at bit ``k`` over the (npu, block) grid.

    A block is exchanged when it agrees with the NPU in bit positions
    ``0 .. low_bits - 1`` and — for the halving phase, where ``low_bits ==
    k`` — belongs to the partner's half at bit ``k`` (for doubling,
    ``low_bits == k + 1`` subsumes the second condition).  Send order is the
    historical nested-loop order: npu-major, block inner, sub-chunks
    innermost.
    """
    npus = np.repeat(np.arange(num_npus, dtype=np.int64), num_npus)
    blocks = np.tile(np.arange(num_npus, dtype=np.int64), num_npus)
    partners = npus ^ (1 << k)
    mask = (blocks & ((1 << low_bits) - 1)) == (npus & ((1 << low_bits) - 1))
    if low_bits == k:
        mask &= ((blocks >> k) & 1) == ((partners >> k) & 1)
    sources = np.repeat(npus[mask], chunks_per_npu)
    dests = np.repeat(partners[mask], chunks_per_npu)
    chunks = np.repeat(blocks[mask], chunks_per_npu) * chunks_per_npu + np.tile(
        np.arange(chunks_per_npu, dtype=np.int64), int(mask.sum())
    )
    steps = np.full(chunks.shape[0], step, dtype=np.int64)
    return sends_from_columns(steps, chunks, sources, dests)


def _halving_sends(
    num_npus: int, chunks_per_npu: int, step_offset: int
) -> List[LogicalSend]:
    """Recursive-halving (Reduce-Scatter) exchange steps."""
    stages = _log2_exact(num_npus)
    sends: List[LogicalSend] = []
    for k in range(stages):
        sends.extend(_stage_sends(num_npus, chunks_per_npu, step_offset + k, k, k))
    return sends


def _doubling_sends(
    num_npus: int, chunks_per_npu: int, step_offset: int
) -> List[LogicalSend]:
    """Recursive-doubling (All-Gather) exchange steps."""
    stages = _log2_exact(num_npus)
    sends: List[LogicalSend] = []
    for index, k in enumerate(reversed(range(stages))):
        sends.extend(_stage_sends(num_npus, chunks_per_npu, step_offset + index, k, k + 1))
    return sends


def rhd_all_reduce(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Recursive Halving-Doubling All-Reduce schedule."""
    stages = _log2_exact(num_npus)
    sends = _halving_sends(num_npus, chunks_per_npu, step_offset=0)
    sends.extend(_doubling_sends(num_npus, chunks_per_npu, step_offset=stages))
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="RHD",
        pattern_name="AllReduce",
        metadata={"chunks_per_npu": chunks_per_npu},
    )


def rhd_all_gather(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the recursive-doubling All-Gather schedule."""
    _log2_exact(num_npus)
    sends = _doubling_sends(num_npus, chunks_per_npu, step_offset=0)
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="RHD",
        pattern_name="AllGather",
        metadata={"chunks_per_npu": chunks_per_npu},
    )
