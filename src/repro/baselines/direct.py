"""Direct (all-to-all) collective algorithms.

The Direct All-Reduce sends every partial straight to the block's owner
(one step of Reduce-Scatter) and then has every owner broadcast its reduced
block to everyone (one step of All-Gather).  It is latency-optimal and is the
preferred algorithm for fully-connected topologies, but it grossly
oversubscribes sparse networks (Fig. 2a).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend, sends_from_columns

__all__ = ["direct_all_reduce", "direct_all_gather", "direct_reduce_scatter"]


def _block_peer_chunks(num_npus: int, chunks_per_npu: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columns enumerating (block, peer != block, chunk of block) block-major.

    The historical nested-loop order: blocks ascending, peers ascending with
    the block itself skipped, the block's sub-chunks innermost.
    """
    grid = np.tile(np.arange(num_npus, dtype=np.int64), num_npus).reshape(num_npus, num_npus)
    peers = grid[grid != np.arange(num_npus, dtype=np.int64)[:, None]]
    blocks = np.repeat(np.arange(num_npus, dtype=np.int64), num_npus - 1)
    blocks = np.repeat(blocks, chunks_per_npu)
    peers = np.repeat(peers, chunks_per_npu)
    chunks = blocks * chunks_per_npu + np.tile(
        np.arange(chunks_per_npu, dtype=np.int64), num_npus * (num_npus - 1)
    )
    return blocks, peers, chunks


def _reduce_scatter_sends(num_npus: int, chunks_per_npu: int, step: int) -> List[LogicalSend]:
    blocks, peers, chunks = _block_peer_chunks(num_npus, chunks_per_npu)
    steps = np.full(chunks.shape[0], step, dtype=np.int64)
    return sends_from_columns(steps, chunks, peers, blocks)


def _all_gather_sends(num_npus: int, chunks_per_npu: int, step: int) -> List[LogicalSend]:
    blocks, peers, chunks = _block_peer_chunks(num_npus, chunks_per_npu)
    steps = np.full(chunks.shape[0], step, dtype=np.int64)
    return sends_from_columns(steps, chunks, blocks, peers)


def direct_all_reduce(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Direct All-Reduce schedule (1-step RS + 1-step AG)."""
    if num_npus < 2:
        raise SimulationError(f"Direct All-Reduce needs at least 2 NPUs, got {num_npus}")
    sends = _reduce_scatter_sends(num_npus, chunks_per_npu, step=0)
    sends.extend(_all_gather_sends(num_npus, chunks_per_npu, step=1))
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="Direct",
        pattern_name="AllReduce",
        metadata={"chunks_per_npu": chunks_per_npu},
    )


def direct_all_gather(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Direct All-Gather schedule (every NPU broadcasts its block)."""
    if num_npus < 2:
        raise SimulationError(f"Direct All-Gather needs at least 2 NPUs, got {num_npus}")
    sends = _all_gather_sends(num_npus, chunks_per_npu, step=0)
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="Direct",
        pattern_name="AllGather",
        metadata={"chunks_per_npu": chunks_per_npu},
    )


def direct_reduce_scatter(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build the Direct Reduce-Scatter schedule (every NPU sends partials to owners)."""
    if num_npus < 2:
        raise SimulationError(f"Direct Reduce-Scatter needs at least 2 NPUs, got {num_npus}")
    sends = _reduce_scatter_sends(num_npus, chunks_per_npu, step=0)
    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="Direct",
        pattern_name="ReduceScatter",
        metadata={"chunks_per_npu": chunks_per_npu},
    )
