"""MultiTree-style spanning-tree collective synthesis.

MultiTree (Huang et al., ISCA 2021) synthesizes collectives by constructing a
height-balanced spanning tree rooted at every NPU over the *physical*
topology and running every block's reduction/broadcast over its owner's tree.
Two properties matter for the paper's comparison (Fig. 17a):

* the trees only use network connectivity, not link bandwidths, so on
  heterogeneous networks the tree edges are not bandwidth-aware; and
* concurrent chunks are **not** overlapped — with more than one chunk per
  NPU, the chunks are processed one after another, which caps the achievable
  bandwidth for large collectives.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.baselines.trees import SpanningTree, trees_to_all_reduce_schedule
from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule
from repro.topology.topology import Topology

__all__ = ["multitree_all_reduce", "build_bfs_tree"]


def build_bfs_tree(topology: Topology, root: int) -> SpanningTree:
    """Breadth-first (height-balanced) spanning tree of ``topology`` rooted at ``root``.

    Tree edges point from parent to child along physical links, so a
    broadcast down the tree (and a reduction up the reversed edges) only ever
    uses single-hop transfers.
    """
    parent: Dict[int, int] = {}
    visited = {root}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbour in topology.out_neighbors(node):
            if neighbour not in visited:
                visited.add(neighbour)
                parent[neighbour] = node
                queue.append(neighbour)
    if len(visited) != topology.num_npus:
        raise SimulationError(
            f"topology {topology.name} is not connected from NPU {root}; cannot build a spanning tree"
        )
    return SpanningTree(root=root, parent=parent)


def multitree_all_reduce(
    topology: Topology,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
) -> LogicalSchedule:
    """Build a MultiTree-style All-Reduce schedule for ``topology``.

    Block ``b`` is reduced up and broadcast down the BFS tree rooted at NPU
    ``b``.  Multiple chunks per NPU are serialized (``serialize_chunks=True``)
    to reproduce MultiTree's lack of chunk-level overlap.
    """
    num_npus = topology.num_npus
    if num_npus < 2:
        raise SimulationError(f"MultiTree needs at least 2 NPUs, got {num_npus}")
    assignments: List[Tuple[SpanningTree, List[int]]] = []
    for root in range(num_npus):
        tree = build_bfs_tree(topology, root)
        assignments.append((tree, [root]))
    schedule = trees_to_all_reduce_schedule(
        assignments,
        num_npus,
        collective_size,
        chunks_per_npu=chunks_per_npu,
        name="MultiTree",
        serialize_chunks=chunks_per_npu > 1,
    )
    schedule.metadata["topology"] = topology.name
    return schedule
