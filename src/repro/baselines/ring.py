"""Ring collective algorithms (the default algorithm of today's CCLs).

The Ring All-Reduce performs a Reduce-Scatter followed by an All-Gather, each
taking ``N - 1`` steps in which every NPU forwards one block to its logical
ring neighbour.  The *bidirectional* variant (the paper's default baseline,
footnote 3) splits every block into two halves and runs two counter-rotating
rings concurrently, one per half, so both link directions of a bidirectional
ring topology are used.

These schedules are *logical* — they reference NPU ranks, not physical links —
so they can be simulated on any topology, where non-adjacent ring neighbours
cause multi-hop routing and congestion (Fig. 1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend, sends_from_columns

__all__ = ["ring_all_reduce", "ring_all_gather", "ring_reduce_scatter"]


def _chunk_assignments(
    num_npus: int, chunks_per_npu: int, bidirectional: bool
) -> List[Tuple[int, int, int]]:
    """Enumerate ``(block, chunk_id, direction)`` for every chunk of the collective.

    In the bidirectional variant every block is split into ``2 *
    chunks_per_npu`` sub-chunks, alternating between the two ring directions;
    in the unidirectional variant all sub-chunks travel in the +1 direction.
    """
    subs = chunks_per_npu * (2 if bidirectional else 1)
    assignments = []
    for block in range(num_npus):
        for sub in range(subs):
            direction = -1 if (bidirectional and sub % 2 == 1) else 1
            assignments.append((block, block * subs + sub, direction))
    return assignments


def _ring_phase_sends(
    num_npus: int,
    assignments: Sequence[Tuple[int, int, int]],
    step_offset: int,
    start_of: "np.ndarray",
    directions: "np.ndarray",
    chunks: "np.ndarray",
) -> List[LogicalSend]:
    """Circulate every chunk ``num_npus - 1`` hops from its start rank.

    The send columns are computed with vectorized modular arithmetic
    (assignment-major, step-inner — the historical append order) and
    materialized through the :func:`sends_from_columns` fast path.
    """
    hops = num_npus - 1
    count = len(assignments)
    steps = np.tile(np.arange(hops, dtype=np.int64), count)
    starts = np.repeat(start_of, hops)
    dirs = np.repeat(directions, hops)
    sources = (starts + dirs * steps) % num_npus
    dests = (sources + dirs) % num_npus
    return sends_from_columns(step_offset + steps, np.repeat(chunks, hops), sources, dests)


def _assignment_columns(assignments: Sequence[Tuple[int, int, int]]):
    blocks, chunks, directions = zip(*assignments)
    return (
        np.asarray(blocks, dtype=np.int64),
        np.asarray(chunks, dtype=np.int64),
        np.asarray(directions, dtype=np.int64),
    )


def _reduce_scatter_sends(
    num_npus: int,
    assignments: Sequence[Tuple[int, int, int]],
    step_offset: int,
) -> List[LogicalSend]:
    """Reduce-Scatter ring sends: block ``b`` circulates and rests at rank ``b - direction``."""
    blocks, chunks, directions = _assignment_columns(assignments)
    return _ring_phase_sends(num_npus, assignments, step_offset, blocks, directions, chunks)


def _all_gather_sends(
    num_npus: int,
    assignments: Sequence[Tuple[int, int, int]],
    step_offset: int,
    start_at_owner: bool,
) -> List[LogicalSend]:
    """All-Gather ring sends.

    When ``start_at_owner`` is True block ``b`` starts at rank ``b`` (plain
    All-Gather); otherwise it starts at rank ``b - direction``, where the
    Reduce-Scatter phase of a Ring All-Reduce left it.
    """
    blocks, chunks, directions = _assignment_columns(assignments)
    starts = blocks if start_at_owner else (blocks - directions) % num_npus
    return _ring_phase_sends(num_npus, assignments, step_offset, starts, directions, chunks)


def _build_schedule(
    sends: List[LogicalSend],
    num_npus: int,
    collective_size: float,
    chunks_per_npu: int,
    bidirectional: bool,
    pattern_name: str,
) -> LogicalSchedule:
    subs = chunks_per_npu * (2 if bidirectional else 1)
    chunk_size = collective_size / (num_npus * subs)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="Ring" if bidirectional else "UniRing",
        pattern_name=pattern_name,
        metadata={"bidirectional": bidirectional, "chunks_per_npu": chunks_per_npu},
    )


def ring_all_reduce(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    bidirectional: bool = True,
) -> LogicalSchedule:
    """Build the Ring All-Reduce schedule (Reduce-Scatter + All-Gather)."""
    if num_npus < 2:
        raise SimulationError(f"Ring All-Reduce needs at least 2 NPUs, got {num_npus}")
    assignments = _chunk_assignments(num_npus, chunks_per_npu, bidirectional)
    sends = _reduce_scatter_sends(num_npus, assignments, step_offset=0)
    sends.extend(
        _all_gather_sends(num_npus, assignments, step_offset=num_npus - 1, start_at_owner=False)
    )
    return _build_schedule(sends, num_npus, collective_size, chunks_per_npu, bidirectional, "AllReduce")


def ring_all_gather(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    bidirectional: bool = True,
) -> LogicalSchedule:
    """Build the Ring All-Gather schedule."""
    if num_npus < 2:
        raise SimulationError(f"Ring All-Gather needs at least 2 NPUs, got {num_npus}")
    assignments = _chunk_assignments(num_npus, chunks_per_npu, bidirectional)
    sends = _all_gather_sends(num_npus, assignments, step_offset=0, start_at_owner=True)
    return _build_schedule(sends, num_npus, collective_size, chunks_per_npu, bidirectional, "AllGather")


def ring_reduce_scatter(
    num_npus: int,
    collective_size: float,
    *,
    chunks_per_npu: int = 1,
    bidirectional: bool = True,
) -> LogicalSchedule:
    """Build the Ring Reduce-Scatter schedule."""
    if num_npus < 2:
        raise SimulationError(f"Ring Reduce-Scatter needs at least 2 NPUs, got {num_npus}")
    assignments = _chunk_assignments(num_npus, chunks_per_npu, bidirectional)
    sends = _reduce_scatter_sends(num_npus, assignments, step_offset=0)
    return _build_schedule(sends, num_npus, collective_size, chunks_per_npu, bidirectional, "ReduceScatter")
