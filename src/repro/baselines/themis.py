"""Themis-style chunk-scheduled hierarchical All-Reduce.

Themis (Rashidi et al., ISCA 2022) improves on BlueConnect by letting
different chunks traverse the network dimensions in different orders, which
balances the load across dimensions with unequal bandwidth-time products.
We reproduce the mechanism that matters for the paper's comparison (Fig. 16):
the collective is split into ``chunks_per_npu`` sub-chunks and sub-chunk
``j`` runs the hierarchical Reduce-Scatter/All-Gather pass with the dimension
order rotated by ``j``, so at any moment different sub-chunks occupy
different dimensions.

Like BlueConnect, Themis cannot change the path a chunk takes *within* a
dimension (it always uses the per-dimension logical ring), which is why it
degrades on asymmetric topologies such as meshes — exactly the effect the
paper reports.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.blueconnect import hierarchical_all_reduce_sends
from repro.errors import SimulationError
from repro.simulator.schedule import LogicalSchedule, LogicalSend

__all__ = ["themis_all_reduce"]


def themis_all_reduce(
    dims: Sequence[int],
    collective_size: float,
    *,
    chunks_per_npu: int = 4,
) -> LogicalSchedule:
    """Build the Themis-style All-Reduce schedule for a multi-dimensional network.

    Parameters
    ----------
    dims:
        Per-dimension sizes of the (logically symmetric) network.
    collective_size:
        Per-NPU buffer size in bytes.
    chunks_per_npu:
        Number of sub-chunks; the paper evaluates 4 and 64.
    """
    dims = tuple(int(dim) for dim in dims)
    num_npus = 1
    for dim in dims:
        num_npus *= dim
    if num_npus < 2:
        raise SimulationError(f"Themis needs at least 2 NPUs, got dims {dims}")
    if chunks_per_npu < 1:
        raise SimulationError(f"chunks_per_npu must be positive, got {chunks_per_npu}")

    num_dims = len(dims)
    sends: List[LogicalSend] = []
    for sub_chunk in range(chunks_per_npu):
        rotation = sub_chunk % num_dims
        dimension_order = [(axis + rotation) % num_dims for axis in range(num_dims)]
        pass_sends, _ = hierarchical_all_reduce_sends(
            dims,
            dimension_order,
            chunks_per_npu=chunks_per_npu,
            sub_chunk=sub_chunk,
            direction=1 if sub_chunk % 2 == 0 else -1,
        )
        sends.extend(pass_sends)

    chunk_size = collective_size / (num_npus * chunks_per_npu)
    return LogicalSchedule(
        sends=sends,
        num_npus=num_npus,
        chunk_size=chunk_size,
        collective_size=collective_size,
        name="Themis",
        pattern_name="AllReduce",
        metadata={"dims": dims, "chunks_per_npu": chunks_per_npu},
    )
