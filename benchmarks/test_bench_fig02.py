"""Benchmarks regenerating Fig. 2 — All-Reduce bandwidth of basic algorithms."""

from repro.experiments import fig02_motivation


def test_fig02a_topology_sweep(run_once, benchmark):
    results = run_once(
        lambda: fig02_motivation.run_topology_sweep(num_npus=16, collective_size=1e9)
    )
    for topology, rows in results.items():
        for row in rows:
            benchmark.extra_info[f"{topology}/{row.algorithm} GB/s"] = round(row.bandwidth_gbps, 1)
    ring_rows = {row.algorithm: row for row in results["Ring(16)"]}
    fc_rows = {row.algorithm: row for row in results["FullyConnected(16)"]}
    # The paper's headline ratios: Ring wins on the Ring topology, Direct on
    # FullyConnected, by large factors.
    assert ring_rows["Ring"].bandwidth_gbps / ring_rows["Direct"].bandwidth_gbps > 3.0
    assert fc_rows["Direct"].bandwidth_gbps / fc_rows["Ring"].bandwidth_gbps > 3.0


def test_fig02b_size_sweep(run_once, benchmark):
    results = run_once(
        lambda: fig02_motivation.run_size_sweep(
            num_npus=64, collective_sizes=[1e3, 512e3, 1e6, 256e6]
        )
    )
    for size, rows in results.items():
        for row in rows:
            benchmark.extra_info[f"{size / 1e6:g}MB/{row.algorithm} GB/s"] = round(
                row.bandwidth_gbps, 3
            )
    tiny = {row.algorithm: row for row in results[1e3]}
    large = {row.algorithm: row for row in results[256e6]}
    # The optimal algorithm flips with the collective size (Fig. 2b).
    assert tiny["Direct"].bandwidth_gbps > tiny["Ring"].bandwidth_gbps
    assert large["Ring"].bandwidth_gbps > large["Direct"].bandwidth_gbps
