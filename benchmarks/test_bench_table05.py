"""Benchmark regenerating Table V — multi-node 3D-RFS All-Reduce scaling."""

from repro.experiments import table05_multinode


def test_table05_multinode_scaling(run_once, benchmark):
    rows = run_once(
        lambda: table05_multinode.run(node_counts=(2, 4, 8), collective_size=256e6, taccl_restarts=3)
    )
    for row in rows:
        normalized = row.normalized_times()
        for algorithm, value in normalized.items():
            benchmark.extra_info[f"{row.num_npus} NPUs/{algorithm} (x TACOS)"] = round(value, 2)
        for algorithm, seconds in row.synthesis_times().items():
            benchmark.extra_info[f"{row.num_npus} NPUs/{algorithm} synthesis s"] = round(seconds, 3)
        # Table V shape: every baseline is slower than TACOS, and the Direct
        # algorithm degrades the most as the system grows.
        assert normalized["Ring"] > 1.5
        assert normalized["Direct"] > 1.5
        if "TACCL-like" in normalized:
            assert normalized["TACCL-like"] >= 1.0
        assert normalized["Ideal"] <= 1.0
    # Direct's normalized time grows with the NPU count (36x at 128 NPUs in the paper).
    direct_trend = [row.normalized_times()["Direct"] for row in rows]
    assert direct_trend[-1] > direct_trend[0]
