"""Benchmarks regenerating Fig. 16 — TACOS vs. BlueConnect / Themis."""

from repro.experiments import fig16_themis


def test_fig16a_bandwidth_sweep(run_once, benchmark):
    sweep = run_once(
        lambda: fig16_themis.run_bandwidth_sweep(
            side=3, collective_sizes=(64e6, 512e6, 1e9), themis_high_chunks=16
        )
    )
    for topology, per_size in sweep.items():
        for size, rows in per_size.items():
            by_algorithm = {row.algorithm: row for row in rows}
            for row in rows:
                benchmark.extra_info[f"{topology}/{size / 1e6:g}MB/{row.algorithm} GB/s"] = round(
                    row.bandwidth_gbps, 1
                )
            tacos = by_algorithm["TACOS (4 chunks)"]
            ideal = by_algorithm["Ideal"]
            # Fig. 16(a): TACOS stays close to ideal and ahead of BlueConnect
            # and the 4-chunk Themis configuration for every collective size.
            assert tacos.bandwidth_gbps >= by_algorithm["BlueConnect (4 chunks)"].bandwidth_gbps
            assert tacos.bandwidth_gbps >= by_algorithm["Themis (4 chunks)"].bandwidth_gbps * 0.95
            if size >= 512e6:
                assert tacos.bandwidth_gbps / ideal.bandwidth_gbps > 0.75


def test_fig16b_utilization_timeline(run_once, benchmark):
    traces = run_once(lambda: fig16_themis.run_utilization(side=3, collective_size=512e6))
    for trace in traces:
        benchmark.extra_info[f"{trace.topology}/{trace.algorithm} avg util"] = round(
            trace.average_utilization, 3
        )
    by_key = {(trace.topology, trace.algorithm): trace for trace in traces}
    # TACOS sustains higher utilization than Themis on the asymmetric hypercube.
    assert (
        by_key[("3D Hypercube", "TACOS")].average_utilization
        >= by_key[("3D Hypercube", "Themis")].average_utilization
    )
