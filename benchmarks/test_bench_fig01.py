"""Benchmark regenerating Fig. 1 — link-load heat maps of basic algorithms vs. TACOS."""

from repro.experiments import fig01_heatmap


def test_fig01_link_load_heatmaps(run_once, benchmark):
    cells = run_once(lambda: fig01_heatmap.run(num_npus=16, collective_size=256e6))
    for cell in cells:
        key = f"{cell.topology}/{cell.algorithm}"
        benchmark.extra_info[f"{key} imbalance"] = round(cell.statistics["imbalance"], 2)
        benchmark.extra_info[f"{key} idle_fraction"] = round(cell.statistics["idle_fraction"], 2)
    # The topology-aware choice is balanced on every topology (the red-boxed
    # cells of the figure): Ring on Ring, Direct on FullyConnected, TACOS on
    # the asymmetric Mesh and Hypercube.
    by_key = {(cell.topology, cell.algorithm): cell for cell in cells}
    assert by_key[("Ring(16)", "Ring")].statistics["imbalance"] < 1.1
    assert by_key[("FullyConnected(16)", "Direct")].statistics["imbalance"] < 1.1
    assert by_key[("Mesh(4x4)", "TACOS")].statistics["idle_fraction"] < 0.05
    hypercube_name = next(cell.topology for cell in cells if "Hypercube3D" in cell.topology)
    assert by_key[(hypercube_name, "TACOS")].statistics["idle_fraction"] < 0.05
