"""Benchmark regenerating Fig. 10 — All-Gather synthesis on 4-NPU topologies."""

from repro.experiments import fig10_topologies


def test_fig10_four_npu_topologies(run_once, benchmark):
    rows = run_once(fig10_topologies.run)
    for row in rows:
        benchmark.extra_info[f"{row.topology} time spans"] = row.num_time_spans
    spans = [row.num_time_spans for row in rows]
    # Fig. 10: FullyConnected finishes in 1 span, the bidirectional ring in 2,
    # the asymmetric topology and the unidirectional ring in 3.
    assert spans == [1, 2, 3, 3]
    assert all(row.verified for row in rows)
