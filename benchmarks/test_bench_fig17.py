"""Benchmarks regenerating Fig. 17 — TACOS vs. MultiTree and vs. C-Cube."""

from repro.experiments import fig17_multitree_ccube


def test_fig17a_multitree_comparison(run_once, benchmark):
    results = run_once(
        lambda: fig17_multitree_ccube.run_multitree_comparison(
            side=4, collective_sizes=(1e6, 4e6, 32e6), chunks_per_npu=4
        )
    )
    for topology, per_size in results.items():
        for size, rows in per_size.items():
            for row in rows:
                benchmark.extra_info[f"{topology}/{size / 1e6:g}MB/{row.algorithm} GB/s"] = round(
                    row.bandwidth_gbps, 2
                )
    for topology, per_size in results.items():
        small = {row.algorithm: row for row in per_size[1e6]}
        large = {row.algorithm: row for row in per_size[32e6]}
        # Fig. 17(a): comparable at 1 MB, but MultiTree saturates for larger
        # collectives because it cannot overlap chunks, while TACOS keeps scaling.
        assert large["TACOS"].bandwidth_gbps > large["MultiTree"].bandwidth_gbps
        tacos_gain = large["TACOS"].bandwidth_gbps / small["TACOS"].bandwidth_gbps
        multitree_gain = large["MultiTree"].bandwidth_gbps / small["MultiTree"].bandwidth_gbps
        assert tacos_gain > multitree_gain


def test_fig17b_ccube_comparison(run_once, benchmark):
    results = run_once(
        lambda: fig17_multitree_ccube.run_ccube_comparison(
            collective_sizes=(512e6, 1e9, 2e9), chunks_per_npu=4
        )
    )
    for size, rows in results.items():
        for row in rows:
            benchmark.extra_info[f"DGX-1/{size / 1e6:g}MB/{row.algorithm} GB/s"] = round(
                row.bandwidth_gbps, 1
            )
    for size, rows in results.items():
        by_algorithm = {row.algorithm: row for row in rows}
        # Fig. 17(b): C-Cube's two trees underutilize the DGX-1 links, so both
        # the Ring baseline and TACOS beat it; TACOS stays near the ideal bound.
        assert by_algorithm["TACOS"].bandwidth_gbps > 2 * by_algorithm["C-Cube"].bandwidth_gbps
        assert by_algorithm["Ring"].bandwidth_gbps > by_algorithm["C-Cube"].bandwidth_gbps
        assert (
            by_algorithm["TACOS"].bandwidth_gbps / by_algorithm["Ideal"].bandwidth_gbps > 0.75
        )
