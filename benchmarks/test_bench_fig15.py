"""Benchmark regenerating Fig. 15 — All-Reduce on heterogeneous topologies."""

from repro.experiments import fig15_heterogeneous


def test_fig15_heterogeneous_topologies(run_once, benchmark):
    results = run_once(lambda: fig15_heterogeneous.run(collective_size=512e6, taccl_restarts=3))
    speedups = []
    for topology, rows in results.items():
        by_algorithm = {row.algorithm: row for row in rows}
        for row in rows:
            benchmark.extra_info[f"{topology}/{row.algorithm} GB/s"] = round(row.bandwidth_gbps, 1)
        tacos = by_algorithm["TACOS"]
        benchmark.extra_info[f"{topology}/TACOS efficiency"] = round(
            tacos.bandwidth_gbps / by_algorithm["Ideal"].bandwidth_gbps, 3
        )
        # Paper shape: TACOS beats the basic algorithms everywhere and the
        # TACCL-like synthesizer on (at least) the switch-based topologies.
        assert tacos.bandwidth_gbps > by_algorithm["Ring"].bandwidth_gbps
        assert tacos.bandwidth_gbps > by_algorithm["Direct"].bandwidth_gbps
        assert tacos.bandwidth_gbps >= by_algorithm["TACCL-like"].bandwidth_gbps * 0.95
        for baseline in ("Ring", "Direct"):
            speedups.append(tacos.bandwidth_gbps / by_algorithm[baseline].bandwidth_gbps)
    benchmark.extra_info["mean speedup over basic algorithms"] = round(
        sum(speedups) / len(speedups), 2
    )
    # The paper reports an average 2.56x speedup over the baselines; our
    # congestion model yields an even larger gap — assert at least ~2.5x.
    assert sum(speedups) / len(speedups) > 2.5
