"""Benchmark regenerating Fig. 20 — end-to-end training time on 3D-RFS clusters."""

from repro.experiments import fig20_end_to_end


def test_fig20_end_to_end_training(run_once, benchmark):
    rows = run_once(
        lambda: fig20_end_to_end.run(
            algorithms=("Ring", "Direct", "Themis", "TACOS", "Ideal"),
            small_nodes=2,
            large_nodes=4,
            chunks_per_npu=2,
        )
    )
    normalized = fig20_end_to_end.normalized_over_tacos(rows)
    for model, times in normalized.items():
        for algorithm, value in times.items():
            benchmark.extra_info[f"{model}/{algorithm} (x TACOS)"] = round(value, 3)
    for model, times in normalized.items():
        # Fig. 20: TACOS is the fastest real algorithm; only the ideal bound is faster.
        assert times["Ring"] >= 1.0
        assert times["Direct"] >= 1.0
        assert times["Themis"] >= 0.99
        assert times["Ideal"] <= 1.0 + 1e-9
    # Communication-bound models (GNMT, Turing-NLG) benefit more than ResNet-50.
    assert normalized["GNMT"]["Ring"] > normalized["ResNet-50"]["Ring"]
    exposed = {row.model: row.breakdown.communication_fraction for row in rows if row.algorithm == "TACOS"}
    for model, fraction in exposed.items():
        benchmark.extra_info[f"{model}/TACOS comm fraction"] = round(fraction, 3)
