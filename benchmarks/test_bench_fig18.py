"""Benchmark regenerating Fig. 18 — link utilization on asymmetric topologies."""

from repro.experiments import fig18_asymmetric_utilization


def test_fig18_asymmetric_utilization(run_once, benchmark):
    traces = run_once(
        lambda: fig18_asymmetric_utilization.run(collective_size=512e6, chunks_per_npu=2)
    )
    by_key = {(trace.topology, trace.algorithm): trace for trace in traces}
    for trace in traces:
        benchmark.extra_info[f"{trace.topology}/{trace.algorithm} avg util"] = round(
            trace.average_utilization, 3
        )
        benchmark.extra_info[f"{trace.topology}/{trace.algorithm} efficiency"] = round(
            trace.efficiency_vs_ideal, 3
        )
    topologies = {trace.topology for trace in traces}
    for topology in topologies:
        tacos = by_key[(topology, "TACOS")]
        ring = by_key[(topology, "Ring")]
        # Fig. 18: TACOS saturates the links and stays near the ideal bound on
        # every topology; Ring only manages that on topologies it suits.
        assert tacos.efficiency_vs_ideal > 0.75
        assert tacos.average_utilization >= ring.average_utilization * 0.9
    # On the symmetric torus TACOS is essentially ideal (paper: 98-100%).
    torus_key = next(topology for topology in topologies if "Torus" in topology)
    assert by_key[(torus_key, "TACOS")].efficiency_vs_ideal > 0.9
    # The asymmetric topologies beat Ring by a wide margin.
    mesh_key = next(topology for topology in topologies if "Mesh" in topology)
    assert (
        by_key[(mesh_key, "TACOS")].efficiency_vs_ideal
        > 1.5 * by_key[(mesh_key, "Ring")].efficiency_vs_ideal
    )
