"""Benchmark regenerating Fig. 14 — All-Gather synthesized for a 3x3 2D Mesh."""

from repro.experiments import fig14_mesh_synthesis


def test_fig14_mesh_all_gather(run_once, benchmark):
    result = run_once(lambda: fig14_mesh_synthesis.run(rows=3, cols=3, collective_size=9e6))
    benchmark.extra_info["time spans"] = result.num_time_spans
    benchmark.extra_info["transfers per span"] = list(result.transfers_per_span.values())
    assert result.verified
    # Fig. 14: the mesh keeps every link busy at t=0 and needs a handful of
    # spans; the ramp-down at the end is the unavoidable asymmetry effect.
    assert result.link_utilization_per_span[0] == 1.0
    assert 4 <= result.num_time_spans <= 6
