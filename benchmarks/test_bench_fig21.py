"""Benchmark regenerating Fig. 21 — training-time breakdown on a 3D Torus."""

from repro.experiments import fig21_breakdown


def test_fig21_training_breakdown(run_once, benchmark):
    rows = run_once(
        lambda: fig21_breakdown.run(
            torus_dims=(4, 4, 4),
            algorithms=("Ring", "Themis", "TACOS", "Ideal"),
            chunks_per_npu=2,
        )
    )
    normalized = fig21_breakdown.normalized_over_ring(rows)
    for model, per_algorithm in normalized.items():
        for algorithm, breakdown in per_algorithm.items():
            benchmark.extra_info[f"{model}/{algorithm} total (x Ring)"] = round(breakdown.total, 3)
            benchmark.extra_info[f"{model}/{algorithm} exposed comm (x Ring)"] = round(
                breakdown.exposed_communication, 3
            )
    for model, per_algorithm in normalized.items():
        # Fig. 21: TACOS cuts the exposed communication relative to Ring and
        # Themis while compute stays constant; the ideal bound is the floor.
        assert per_algorithm["TACOS"].total <= per_algorithm["Ring"].total + 1e-9
        assert per_algorithm["TACOS"].total <= per_algorithm["Themis"].total + 1e-9
        assert per_algorithm["Ideal"].total <= per_algorithm["TACOS"].total + 1e-9
        assert per_algorithm["TACOS"].compute == per_algorithm["Ring"].compute
    # MSFT-1T (hybrid parallel, trillion parameters) is communication dominated.
    msft_ring = normalized["MSFT-1T"]["Ring"]
    assert msft_ring.exposed_communication > msft_ring.compute
