"""Benchmark regenerating Fig. 19 — synthesis-time scalability of TACOS."""

from repro.experiments import fig19_scalability


def test_fig19_synthesis_scalability(run_once, benchmark):
    # One throwaway pass over the full mesh grid first: one-time process
    # costs (lazy imports, allocator growth, the first gen-2 GC crossing)
    # otherwise land inside a single timed mesh point — milliseconds each —
    # and flip the growth assertion below.  Collect before measuring so the
    # warmup's garbage is not billed to the measured pass either.
    import gc

    fig19_scalability.run(
        mesh_sides=(3, 4, 5, 6, 8, 10),
        hypercube_sides=(),
        collective_size=64e6,
        include_taccl=False,
    )
    gc.collect()
    results = run_once(
        lambda: fig19_scalability.run(
            mesh_sides=(3, 4, 5, 6, 8, 10),
            hypercube_sides=(2, 3, 4),
            collective_size=64e6,
            include_taccl=True,
            taccl_max_npus=36,
            taccl_restarts=3,
        )
    )
    for family, points in results.items():
        for point in points:
            benchmark.extra_info[f"{family}/{point.num_npus} NPUs (s)"] = round(
                point.synthesis_seconds, 4
            )
    mesh_points = results["2D Mesh"]
    hypercube_points = results["3D Hypercube"]
    # Synthesis time grows with system size and fits the paper's O(n^2) model
    # well.  The smallest points measure single milliseconds, where GC pauses
    # and allocator growth from the interleaved TACCL-like runs produce
    # occasional adjacent inversions — so the growth check tolerates jitter
    # (no point may fall below 60% of its predecessor, the largest system
    # must dominate) while the R^2 fit below pins the quadratic trend.
    mesh_times = [point.synthesis_seconds for point in mesh_points]
    assert all(
        later >= 0.6 * earlier for earlier, later in zip(mesh_times, mesh_times[1:])
    ), mesh_times
    assert max(mesh_times) == mesh_times[-1] > 10 * mesh_times[0]
    _, mesh_r2 = fig19_scalability.fit_quadratic(mesh_points)
    _, hypercube_r2 = fig19_scalability.fit_quadratic(hypercube_points)
    benchmark.extra_info["2D Mesh quadratic R^2"] = round(mesh_r2, 4)
    benchmark.extra_info["3D Hypercube quadratic R^2"] = round(hypercube_r2, 4)
    assert mesh_r2 > 0.95
    assert hypercube_r2 > 0.95
    # Mirroring the paper, the TACCL-like baseline is only attempted up to a few
    # tens of NPUs.  Note: the absolute synthesis-time blow-up of the real MILP
    # is not reproduced by the randomized-restart stand-in (see EXPERIMENTS.md);
    # only its presence on small systems and TACOS' polynomial trend are.
    taccl_points = results["2D Mesh (TACCL-like)"]
    assert taccl_points, "TACCL-like baseline was not exercised"
    assert max(point.num_npus for point in taccl_points) <= 36
