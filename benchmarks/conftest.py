"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
experiments are deterministic but expensive, so each one is executed exactly
once per benchmark run (``rounds=1``) and the headline numbers it reproduces
are attached to the benchmark record via ``extra_info`` — the benchmark output
therefore doubles as the reproduction log summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""

    def runner(function: Callable[[], object]) -> object:
        return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)

    return runner
